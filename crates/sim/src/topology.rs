//! Topology-aware interconnect: heterogeneous links, routed (possibly
//! multi-hop) paths, and per-direction contention.
//!
//! PR 2's multi-device model priced every byte — edge slices *and* the
//! inter-device frontier exchange — on one shared PCIe root complex,
//! which is exactly the "one flat bus" assumption the paper's Section
//! VIII names as the open frontier. This module makes the interconnect a
//! first-class object:
//!
//! * a [`Link`] is one contended wire with its own pricing: the **host
//!   root complex** (all devices' PCIe lanes converge there, priced with
//!   the TLP-quantised [`PcieModel`]) or an **NVLink-class peer link**
//!   between two devices (smooth latency + bandwidth, [`LinkSpec`]).
//!   Every peer link carries its *own* spec, so mixed-generation meshes
//!   (x4 beside x8 bridges, NVLink 2 beside NVLink 4) are first-class —
//!   see [`Interconnect::ring_with_specs`], [`Interconnect::mesh`], and
//!   [`Interconnect::with_link_spec`];
//! * peer links are **full-duplex by default** ([`Duplex::Full`]): each
//!   direction owns its own contention queue, so the two legs of a
//!   symmetric exchange overlap instead of serialising. [`Duplex::Half`]
//!   keeps the PR 3 model (both directions share one queue) and prices
//!   bit-identically to it. The host root complex always stays **one**
//!   TLP-quantised queue, preserving the legacy shared-bus reduction;
//! * an [`Interconnect`] is a set of links in one of three named shapes
//!   ([`TopologyKind`]) — host-only (the legacy shared bus), a ring of
//!   neighbour links, or a fully-connected clique — optionally edited
//!   per link into an arbitrary heterogeneous mesh;
//! * [`Interconnect::route`] returns the **cheapest priced path** for a
//!   device-to-device transfer of a given *size*, chosen at build time
//!   from a dense **per-breakpoint** route table: routes are probed at a
//!   ladder of payload sizes ([`Interconnect::with_route_breakpoints`];
//!   the default ladder is the single legacy [`ROUTE_PROBE_BYTES`]
//!   probe), and `route(src, dst, bytes)` selects the table whose probe
//!   matches the batch, so latency-bound tiny batches may legitimately
//!   take fewer hops than bandwidth-bound bulk ones. Each entry is
//!   **direct** over a peer link, **forwarded** device-via-device over a
//!   multi-hop peer path, or **host-staged** (up then down on the root
//!   complex) when the peer fabric is absent or slower. A slow bridge
//!   therefore shifts its pair's traffic back to host staging instead of
//!   being used blindly;
//! * forwarded chains price **store-and-forward** by default (each hop
//!   waits for the whole batch); a [`LinkSpec::with_cut_through`] chunk
//!   size lets a chain pipeline chunks across its hops instead, pricing
//!   the chain as the bottleneck hop's stream plus a one-chunk ramp on
//!   every other hop ([`Interconnect::chain_time`]). `cut_through =
//!   None` (the default) reproduces the store-and-forward sum exactly;
//! * [`Interconnect::price_all_gather`] plays a frontier all-gather
//!   against the per-direction contention queues: legs on disjoint
//!   queues overlap, legs sharing a queue serialise. With the host-only
//!   topology this reduces *bit-identically* to the legacy serial-bus
//!   pricing (asserted by tests), so every pre-topology differential
//!   guarantee carries over; uniform-spec half-duplex cliques reduce
//!   bit-identically to the PR 3 per-link queues.
//! * [`Interconnect::price_all_gather_load_aware`] adds a second,
//!   *load-aware* pass: given the static pass's per-queue busy times, a
//!   deterministic bounded greedy re-routes batches off the busiest
//!   queue onto their next-cheapest path — another breakpoint's route,
//!   the cheapest first-hop-disjoint detour, host staging at its true
//!   *marginal* (amortised-upload) cost, or an even **split** across two
//!   disjoint peer paths (the two ring directions) — accepting a move
//!   only when it strictly lowers the priced makespan, so it is never
//!   worse than the static routing.

use crate::pcie::PcieModel;
use crate::SimTime;

/// Index of the host root complex in every [`Interconnect`]'s link table.
pub const HOST_LINK: usize = 0;

/// Default probe payload used to price candidate routes when the dense
/// route table is built: large enough that sustained bandwidth (not
/// launch latency) dominates, so route choices reflect link *generations*
/// rather than fixed costs. One probe prices one hop; host staging is
/// priced as one upload plus one download of the probe on the root
/// complex. An [`Interconnect`] built without
/// [`Interconnect::with_route_breakpoints`] probes at exactly this one
/// size, reproducing the legacy single-probe table bit-identically.
pub const ROUTE_PROBE_BYTES: u64 = 1 << 20;

/// A log-spaced ladder of route-probe sizes (4 KiB … 64 MiB) for
/// byte-size-aware routing: pass it to
/// [`Interconnect::with_route_breakpoints`] so latency-bound tiny
/// batches and bandwidth-bound bulk batches each get the route that is
/// cheapest *at their size*. The legacy [`ROUTE_PROBE_BYTES`] probe is
/// one of the rungs.
pub const ROUTE_BREAKPOINT_LADDER: [u64; 5] =
    [4 << 10, 64 << 10, ROUTE_PROBE_BYTES, 16 << 20, 64 << 20];

/// Improvement rounds the load-aware second pass may apply before it
/// stops (each round applies at most one strictly-improving move), so
/// re-routing always terminates.
pub const MAX_REROUTE_ROUNDS: usize = 24;

/// Relative makespan improvement a re-route move must achieve to be
/// accepted (guards against f64 noise flapping the greedy).
const REROUTE_EPS: f64 = 1e-9;

/// Named interconnect shapes the simulator knows how to build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// No peer links: every transfer is staged through the host root
    /// complex. The legacy (PR 2) model; the default.
    #[default]
    HostOnly,
    /// Each device has a direct link to its two ring neighbours
    /// (`d ± 1 mod D`); other pairs forward along the ring or stage
    /// through the host, whichever prices cheaper.
    Ring,
    /// A direct link between every device pair (NVSwitch-class).
    AllToAll,
    /// An explicitly-specified link set ([`Interconnect::mesh`], or
    /// `link_overrides` on any base shape): the uniform builder adds no
    /// links of its own, the caller supplies every peer link.
    Mesh,
}

impl TopologyKind {
    /// The uniformly-buildable shapes, in sweep order ([`TopologyKind::
    /// Mesh`] is excluded: it has no uniform link set to sweep).
    pub const ALL: [TopologyKind; 3] =
        [TopologyKind::HostOnly, TopologyKind::Ring, TopologyKind::AllToAll];

    /// Display name (also accepted by [`TopologyKind::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            TopologyKind::HostOnly => "host-only",
            TopologyKind::Ring => "ring",
            TopologyKind::AllToAll => "all-to-all",
            TopologyKind::Mesh => "mesh",
        }
    }

    /// Parse a CLI/config spelling.
    pub fn parse(s: &str) -> Option<TopologyKind> {
        match s.to_ascii_lowercase().as_str() {
            "host" | "host-only" | "hostonly" | "pcie" => Some(TopologyKind::HostOnly),
            "ring" => Some(TopologyKind::Ring),
            "all-to-all" | "alltoall" | "a2a" | "nvswitch" => Some(TopologyKind::AllToAll),
            "mesh" => Some(TopologyKind::Mesh),
            _ => None,
        }
    }
}

/// Queue discipline of a peer link's two directions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Duplex {
    /// Both directions share one contention queue (the PR 3 model;
    /// conservative, and the simpler invariant to test).
    Half,
    /// Each direction owns its own queue at the spec's bandwidth — the
    /// real NVLink discipline, which lets the two legs of a symmetric
    /// exchange overlap. The default.
    #[default]
    Full,
}

/// Bandwidth/latency/duplex of an NVLink-class point-to-point link. The
/// bandwidth is *per direction*; [`Duplex`] decides whether the two
/// directions contend for one queue or run independently.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Effective (practical) bandwidth per direction, bytes/second.
    pub bandwidth: f64,
    /// Fixed per-transfer software/launch latency, seconds.
    pub latency: SimTime,
    /// One shared queue (PR 3) or one queue per direction (NVLink).
    pub duplex: Duplex,
    /// Cut-through chunk size in bytes: when every hop of a forwarded
    /// chain advertises one, the chain pipelines chunks of the smallest
    /// advertised size across its hops ([`Interconnect::chain_time`])
    /// instead of store-and-forwarding the whole batch per hop. `None`
    /// (the default) keeps the chain store-and-forward, pricing
    /// bit-identically to the pre-cut-through model.
    pub cut_through: Option<u64>,
}

impl LinkSpec {
    /// NVLink 2.0-class bridge: ~50 GB/s nominal per direction, derated
    /// to practical throughput like the PCIe model; P2P copies skip the
    /// host staging so their launch latency is about half a `cudaMemcpy`.
    /// Full-duplex, as the hardware is.
    pub fn nvlink() -> Self {
        Self::with_nominal_bw(50.0e9)
    }

    /// A full-duplex peer link with the given *nominal* per-direction
    /// bandwidth (bytes/s), derated by the same practical fraction as the
    /// PCIe model.
    pub fn with_nominal_bw(nominal: f64) -> Self {
        LinkSpec {
            bandwidth: nominal * crate::pcie::PRACTICAL_FRACTION,
            latency: 5.0e-6,
            duplex: Duplex::Full,
            cut_through: None,
        }
    }

    /// The same link with cut-through forwarding at `chunk`-byte
    /// granularity: forwarded chains whose hops all advertise a chunk
    /// size pipeline their chunks instead of store-and-forwarding the
    /// whole batch per hop.
    pub fn with_cut_through(mut self, chunk: u64) -> Self {
        assert!(chunk > 0, "cut-through chunks must be non-empty");
        self.cut_through = Some(chunk);
        self
    }

    /// The same link with both directions sharing one queue — the PR 3
    /// queueing discipline. (Host-only and uniform half-duplex cliques
    /// then price bit-identically to PR 3; rings still differ, because
    /// routing now forwards their distance ≥ 2 pairs device-via-device
    /// instead of always host-staging them.)
    pub fn half_duplex(mut self) -> Self {
        self.duplex = Duplex::Half;
        self
    }

    /// The same link with one queue per direction (the default).
    pub fn full_duplex(mut self) -> Self {
        self.duplex = Duplex::Full;
        self
    }

    /// Scale fixed latency to 2^-shift datasets, mirroring
    /// [`MachineModel::scaled`](crate::MachineModel::scaled).
    pub fn scaled(mut self, shift: u32) -> Self {
        self.latency /= (1u64 << shift) as f64;
        self
    }

    /// Wall time of one transfer of `bytes` over one direction of this
    /// link.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return 0.0;
        }
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// Host-side vs device-to-device link classes (the per-class exchange
/// breakdown in `IterationStats` uses these).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// The PCIe root complex every device's host lanes converge on.
    Host,
    /// A direct NVLink-class link between two devices.
    Peer,
}

/// How a link prices one transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkRate {
    /// TLP-quantised explicit-copy pricing (the PCIe root complex) —
    /// keeps host-staged legs bit-identical to the legacy bus model.
    Pcie(PcieModel),
    /// Smooth latency + bandwidth pricing (NVLink-class peer links).
    Smooth(LinkSpec),
}

impl LinkRate {
    /// Wall time of one transfer of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        match self {
            LinkRate::Pcie(p) => p.explicit_copy_time(bytes),
            LinkRate::Smooth(s) => s.transfer_time(bytes),
        }
    }
}

/// One contended wire of the interconnect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// Host root complex or device peer link.
    pub class: LinkClass,
    /// Endpoint devices of a peer link (`None` for the host link, which
    /// every device shares).
    pub endpoints: Option<(u32, u32)>,
    /// Transfer pricing.
    pub rate: LinkRate,
}

impl Link {
    /// Queues this link exposes: one for the host root complex and
    /// half-duplex peers, two (one per direction) for full-duplex peers.
    fn queue_count(&self) -> usize {
        match self.rate {
            LinkRate::Smooth(s) if s.duplex == Duplex::Full => 2,
            _ => 1,
        }
    }
}

/// The priced path of one device-to-device transfer, chosen at build
/// time as the cheapest of direct / multi-hop-forwarded / host-staged
/// at each configured route-probe size ([`ROUTE_PROBE_BYTES`] alone by
/// default).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route {
    /// A direct peer link (link-table index).
    Direct(usize),
    /// Store-and-forward through intermediate devices: ≥ 2 peer-link ids
    /// in hop order. Every hop pays its own transfer time and occupies
    /// its own direction queue.
    Forwarded(Vec<usize>),
    /// Store-and-forward through host memory, one upload and one
    /// download on the host root complex — chosen when no peer path
    /// exists or every peer path prices slower (e.g. across a slow
    /// mixed-generation bridge).
    HostStaged,
}

/// The concrete path one all-gather fragment travels: a peer hop chain
/// (one hop = direct) or staging through the host root complex.
#[derive(Clone, Debug, PartialEq)]
enum FragPath {
    /// Peer-link ids in travel order (length 1 = a direct link).
    Peer(Vec<usize>),
    /// Upload + aggregated download on the host root complex.
    Host,
}

/// One batch (or, after a split, one half of a batch) of the all-gather,
/// with the path it currently travels and the static route it started
/// on.
#[derive(Clone, Debug)]
struct Fragment {
    src: u32,
    dst: u32,
    bytes: u64,
    /// Path the fragment currently travels (the load-aware pass edits
    /// this).
    path: FragPath,
    /// The sized static route the batch started on (re-route
    /// accounting compares against it).
    static_path: FragPath,
    /// Secondary half of a split batch.
    split: bool,
    /// Whole batches may split once; fragments never re-split.
    can_split: bool,
}

/// One candidate re-route move of the load-aware pass.
#[derive(Clone, Debug)]
enum RerouteMove {
    /// Move the whole fragment onto this path.
    Whole(FragPath),
    /// Keep half the bytes on the current path and send the other half
    /// over this disjoint peer chain.
    Split(Vec<usize>),
}

/// Convert a route-table entry into the path a fragment travels.
fn frag_path_of(route: &Route) -> FragPath {
    match route {
        Route::Direct(l) => FragPath::Peer(vec![*l]),
        Route::Forwarded(hops) => FragPath::Peer(hops.clone()),
        Route::HostStaged => FragPath::Host,
    }
}

/// Apply one re-route move, returning the edited fragment list (the
/// split secondary is inserted right after its primary, so fragments
/// stay grouped by ascending `(src, dst)`).
fn apply_move(frags: &[Fragment], i: usize, mv: &RerouteMove) -> Vec<Fragment> {
    let mut out = frags.to_vec();
    match mv {
        RerouteMove::Whole(p) => out[i].path = p.clone(),
        RerouteMove::Split(alt) => {
            let moved = out[i].bytes / 2;
            out[i].bytes -= moved;
            out[i].can_split = false;
            let mut secondary = out[i].clone();
            secondary.bytes = moved;
            secondary.path = FragPath::Peer(alt.clone());
            secondary.split = true;
            out.insert(i + 1, secondary);
        }
    }
    out
}

/// A set of links connecting `D` devices and the host, plus the dense
/// tables derived from them at build time: direct-peer adjacency, the
/// per-pair cheapest route, and the queue layout. All lookups that PR 3
/// answered with a linear scan of the link table are O(1) here.
#[derive(Clone, Debug, PartialEq)]
pub struct Interconnect {
    kind: TopologyKind,
    num_devices: usize,
    links: Vec<Link>,
    /// Dense `nd × nd` direct-peer-link table (`None` off the diagonal of
    /// the topology; the diagonal is always `None`).
    peer_adj: Vec<Option<usize>>,
    /// Route-probe sizes (ascending, deduplicated, never empty): one
    /// dense route table is built per breakpoint, and
    /// [`Interconnect::route`] selects by batch size. The default is the
    /// single legacy [`ROUTE_PROBE_BYTES`] probe.
    breakpoints: Vec<u64>,
    /// Dense `breakpoints × nd × nd` cheapest-route tables, breakpoint-
    /// major (the diagonal holds `HostStaged` but is never consulted: a
    /// device does not route to itself).
    routes: Vec<Route>,
    /// Dense `breakpoints × nd × nd` *fallback* routes for the
    /// load-aware pass: the cheapest peer path that avoids the primary
    /// route's first hop (for host-staged primaries, the cheapest peer
    /// path outright). `None` when the peer fabric admits no such path.
    alt_routes: Vec<Option<Vec<usize>>>,
    /// Per link: `[forward, reverse]` queue ids. Both entries coincide
    /// for single-queue links (host, half-duplex peers).
    queue_of: Vec<[usize; 2]>,
    num_queues: usize,
}

impl Interconnect {
    /// Build the `kind` topology over `num_devices` devices (minimum 1):
    /// link 0 is always the host root complex priced by `host`; peer
    /// links (if any) all carry the uniform `peer` spec. For mixed
    /// generations use [`Interconnect::ring_with_specs`],
    /// [`Interconnect::mesh`], or [`Interconnect::with_link_spec`].
    pub fn build(kind: TopologyKind, num_devices: usize, host: PcieModel, peer: LinkSpec) -> Self {
        let nd = num_devices.max(1);
        let pairs: Vec<(u32, u32, LinkSpec)> = match kind {
            // A mesh has no uniform link set: links come from the
            // caller (`Interconnect::mesh`, `with_link_spec`,
            // `link_overrides`).
            TopologyKind::HostOnly | TopologyKind::Mesh => Vec::new(),
            TopologyKind::Ring => ring_pairs(nd).into_iter().map(|(a, b)| (a, b, peer)).collect(),
            TopologyKind::AllToAll => {
                let mut v = Vec::new();
                for a in 0..nd as u32 {
                    for b in a + 1..nd as u32 {
                        v.push((a, b, peer));
                    }
                }
                v
            }
        };
        Self::from_links(kind, nd, host, &pairs)
    }

    /// A ring whose `i`-th neighbour link (`i → (i+1) mod D`) carries
    /// `specs[i]` — the mixed-generation ring builder. `specs.len()` must
    /// equal the ring's link count (`D` for `D > 2`, 1 for `D = 2`, 0
    /// below).
    pub fn ring_with_specs(num_devices: usize, host: PcieModel, specs: &[LinkSpec]) -> Self {
        let nd = num_devices.max(1);
        let pairs = ring_pairs(nd);
        assert_eq!(
            specs.len(),
            pairs.len(),
            "a {nd}-device ring has {} links, got {} specs",
            pairs.len(),
            specs.len()
        );
        let links: Vec<(u32, u32, LinkSpec)> =
            pairs.iter().zip(specs).map(|(&(a, b), &s)| (a, b, s)).collect();
        Self::from_links(TopologyKind::Ring, nd, host, &links)
    }

    /// An arbitrary heterogeneous mesh: one peer link per `(a, b, spec)`
    /// entry (order-insensitive endpoints, no self-loops, no duplicate
    /// pairs). Pairs without a link route multi-hop or via the host,
    /// whichever is cheaper.
    pub fn mesh(num_devices: usize, host: PcieModel, links: &[(u32, u32, LinkSpec)]) -> Self {
        Self::from_links(TopologyKind::Mesh, num_devices.max(1), host, links)
    }

    fn from_links(
        kind: TopologyKind,
        nd: usize,
        host: PcieModel,
        pairs: &[(u32, u32, LinkSpec)],
    ) -> Self {
        let mut links =
            vec![Link { class: LinkClass::Host, endpoints: None, rate: LinkRate::Pcie(host) }];
        let mut seen = vec![false; nd * nd];
        for &(a, b, spec) in pairs {
            assert!(a != b, "peer link ({a}, {b}) is a self-loop");
            assert!(
                (a as usize) < nd && (b as usize) < nd,
                "peer link ({a}, {b}) exceeds {nd} devices"
            );
            let (lo, hi) = (a.min(b) as usize, a.max(b) as usize);
            assert!(!seen[lo * nd + hi], "duplicate peer link ({a}, {b})");
            seen[lo * nd + hi] = true;
            links.push(Link {
                class: LinkClass::Peer,
                endpoints: Some((a, b)),
                rate: LinkRate::Smooth(spec),
            });
        }
        let mut ic = Interconnect {
            kind,
            num_devices: nd,
            links,
            peer_adj: Vec::new(),
            breakpoints: vec![ROUTE_PROBE_BYTES],
            routes: Vec::new(),
            alt_routes: Vec::new(),
            queue_of: Vec::new(),
            num_queues: 0,
        };
        ic.finalize();
        ic
    }

    /// The same interconnect with its route tables rebuilt at the given
    /// probe-size ladder (sorted and deduplicated; must be non-empty and
    /// positive): [`Interconnect::route`] then selects each transfer's
    /// route by batch size instead of pricing everything at the single
    /// [`ROUTE_PROBE_BYTES`] probe. See [`ROUTE_BREAKPOINT_LADDER`] for
    /// a ready-made ladder.
    pub fn with_route_breakpoints(mut self, breakpoints: &[u64]) -> Self {
        assert!(!breakpoints.is_empty(), "at least one route probe size is required");
        let mut bps = breakpoints.to_vec();
        bps.sort_unstable();
        bps.dedup();
        assert!(bps[0] > 0, "route probe sizes must be positive");
        self.breakpoints = bps;
        self.finalize();
        self
    }

    /// The probe-size ladder the route tables were built at (ascending).
    pub fn route_breakpoints(&self) -> &[u64] {
        &self.breakpoints
    }

    /// The same interconnect with the `(a, b)` peer link re-priced to
    /// `spec` — or, when the pair has no link yet, with a new one added
    /// (so a named shape can be edited into an arbitrary mesh). Route and
    /// queue tables are rebuilt.
    pub fn with_link_spec(mut self, a: u32, b: u32, spec: LinkSpec) -> Self {
        let nd = self.num_devices;
        assert!(a != b, "peer link ({a}, {b}) is a self-loop");
        assert!(
            (a as usize) < nd && (b as usize) < nd,
            "peer link ({a}, {b}) exceeds {nd} devices"
        );
        match self.peer_adj[a as usize * nd + b as usize] {
            Some(l) => self.links[l].rate = LinkRate::Smooth(spec),
            None => self.links.push(Link {
                class: LinkClass::Peer,
                endpoints: Some((a, b)),
                rate: LinkRate::Smooth(spec),
            }),
        }
        self.finalize();
        self
    }

    /// Recompute the dense tables (adjacency, queue layout, cheapest
    /// routes) from the link table.
    fn finalize(&mut self) {
        let nd = self.num_devices;
        self.peer_adj = vec![None; nd * nd];
        for (l, link) in self.links.iter().enumerate() {
            if let Some((a, b)) = link.endpoints {
                self.peer_adj[a as usize * nd + b as usize] = Some(l);
                self.peer_adj[b as usize * nd + a as usize] = Some(l);
            }
        }
        self.queue_of = Vec::with_capacity(self.links.len());
        let mut q = 0usize;
        for link in &self.links {
            match link.queue_count() {
                2 => {
                    self.queue_of.push([q, q + 1]);
                    q += 2;
                }
                _ => {
                    self.queue_of.push([q, q]);
                    q += 1;
                }
            }
        }
        self.num_queues = q;
        let (routes, alt_routes) = self.compute_routes();
        self.routes = routes;
        self.alt_routes = alt_routes;
    }

    /// Deterministic Dijkstra over the peer fabric from `src` (linear
    /// extraction: D is small, so the O(D²) scan beats a heap and stays
    /// allocation-light). Nodes settle in ascending (cost, id) order and
    /// paths improve only on strictly smaller cost. `excluded` (a link
    /// id, or `usize::MAX` for none) is skipped — the pruned runs supply
    /// the first-hop-disjoint fallback routes.
    fn dijkstra(
        &self,
        src: usize,
        hop_cost: &[SimTime],
        excluded: usize,
    ) -> (Vec<f64>, Vec<Option<usize>>, Vec<usize>) {
        let nd = self.num_devices;
        let mut dist = vec![f64::INFINITY; nd];
        let mut via: Vec<Option<usize>> = vec![None; nd]; // arriving link
        let mut prev = vec![usize::MAX; nd];
        let mut done = vec![false; nd];
        dist[src] = 0.0;
        loop {
            let mut u = usize::MAX;
            for d in 0..nd {
                if !done[d] && dist[d].is_finite() && (u == usize::MAX || dist[d] < dist[u]) {
                    u = d;
                }
            }
            if u == usize::MAX {
                break;
            }
            done[u] = true;
            for v in 0..nd {
                if let Some(l) = self.peer_adj[u * nd + v] {
                    if l == excluded {
                        continue;
                    }
                    let c = dist[u] + hop_cost[l];
                    if c < dist[v] {
                        dist[v] = c;
                        via[v] = Some(l);
                        prev[v] = u;
                    }
                }
            }
        }
        (dist, via, prev)
    }

    /// Cheapest route per ordered pair *per breakpoint*: per-source
    /// Dijkstra over the peer fabric (hop cost = the link's probe
    /// transfer time at that breakpoint), compared against host staging
    /// (probe upload + probe download on the root complex). With the
    /// default single-breakpoint ladder this is exactly the legacy
    /// single-probe table.
    ///
    /// The host comparison is per-pair and static — a known relaxation:
    /// [`Interconnect::price_all_gather`] amortises a staged source's
    /// upload across all of its staged destinations and aggregates
    /// downloads, so once one pair of a source already stages, the
    /// *marginal* host cost of staging another is below the 2-copy probe
    /// cost used here. A marginal-cost table would depend on which other
    /// pairs stage (and thus on the routing itself); the static per-pair
    /// choice keeps the tables load-independent and O(1), and the
    /// load-aware second pass ([`Interconnect::
    /// price_all_gather_load_aware`]) is where the marginal cost is
    /// finally honoured: its host-staging candidate is evaluated against
    /// the amortised upload, not the 2-copy probe.
    ///
    /// Alongside each primary route the second (same-length) table holds
    /// the re-route *fallback*: the cheapest peer path avoiding the
    /// primary's first hop (for host-staged primaries, the cheapest peer
    /// path outright, however costly), which the load-aware pass offers
    /// as a detour or split target.
    fn compute_routes(&self) -> (Vec<Route>, Vec<Option<Vec<usize>>>) {
        let nd = self.num_devices;
        let nb = self.breakpoints.len();
        let mut routes = vec![Route::HostStaged; nb * nd * nd];
        let mut alts: Vec<Option<Vec<usize>>> = vec![None; nb * nd * nd];
        for (bi, &probe) in self.breakpoints.iter().enumerate() {
            let host_cost = 2.0 * self.links[HOST_LINK].rate.transfer_time(probe);
            let hop_cost: Vec<SimTime> =
                self.links.iter().map(|l| l.rate.transfer_time(probe)).collect();
            for src in 0..nd {
                let (dist, via, prev) = self.dijkstra(src, &hop_cost, usize::MAX);
                // First hops of this source's peer-routed primaries: one
                // pruned Dijkstra per distinct first link serves every
                // destination that leaves over it.
                let mut first_links: Vec<usize> = Vec::new();
                for (dst, &d) in dist.iter().enumerate() {
                    if dst == src || !d.is_finite() {
                        continue;
                    }
                    let hops = extract_hops(src, dst, &via, &prev);
                    let idx = (bi * nd + src) * nd + dst;
                    // Host staging wins strictly costlier peer paths; the
                    // rejected peer path stays available as the fallback.
                    if d > host_cost {
                        alts[idx] = Some(hops);
                    } else {
                        if !first_links.contains(&hops[0]) {
                            first_links.push(hops[0]);
                        }
                        routes[idx] = match hops.len() {
                            1 => Route::Direct(hops[0]),
                            _ => Route::Forwarded(hops),
                        };
                    }
                }
                first_links.sort_unstable();
                for &fl in &first_links {
                    let (dist2, via2, prev2) = self.dijkstra(src, &hop_cost, fl);
                    for (dst, &d2) in dist2.iter().enumerate() {
                        if dst == src || !d2.is_finite() {
                            continue;
                        }
                        let idx = (bi * nd + src) * nd + dst;
                        let primary_first = match &routes[idx] {
                            Route::Direct(l) => Some(*l),
                            Route::Forwarded(h) => Some(h[0]),
                            Route::HostStaged => None,
                        };
                        if primary_first == Some(fl) {
                            alts[idx] = Some(extract_hops(src, dst, &via2, &prev2));
                        }
                    }
                }
            }
        }
        (routes, alts)
    }

    /// The legacy shared-bus interconnect (no peer links).
    pub fn host_only(num_devices: usize, host: PcieModel) -> Self {
        Self::build(TopologyKind::HostOnly, num_devices, host, LinkSpec::nvlink())
    }

    /// Topology shape.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Devices connected.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Total links, host root complex included.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Total contention queues: one for the host root complex and each
    /// half-duplex peer link, two for each full-duplex peer link.
    pub fn num_queues(&self) -> usize {
        self.num_queues
    }

    /// The queue serving `link` in direction `reverse` (`false` =
    /// `endpoints.0 → endpoints.1`). Single-queue links return the same
    /// id for both directions.
    pub fn queue(&self, link: usize, reverse: bool) -> usize {
        self.queue_of[link][reverse as usize]
    }

    /// The link table (index = link id; `HOST_LINK` first).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The host root complex link id.
    pub fn host_link(&self) -> usize {
        HOST_LINK
    }

    /// Host link used by `device`'s host-side transfers.
    ///
    /// Every device's lanes currently converge on the **one** root
    /// complex, so every in-range device maps to [`HOST_LINK`] — the
    /// device argument exists because per-device root ports (independent
    /// host switches on heterogeneous hosts) are where this API goes
    /// next, and callers must already address the host link per device.
    /// The debug assertion keeps callers honest: passing a device the
    /// topology does not span is a bug even while the answer happens to
    /// be uniform.
    pub fn host_link_of(&self, device: u32) -> usize {
        debug_assert!(
            (device as usize) < self.num_devices,
            "host_link_of({device}) out of range: the topology spans {} devices",
            self.num_devices
        );
        HOST_LINK
    }

    /// Direct peer link between `a` and `b`, if the topology has one.
    /// O(1): indexes the dense adjacency table built at construction.
    pub fn peer_link(&self, a: u32, b: u32) -> Option<usize> {
        self.peer_adj[a as usize * self.num_devices + b as usize]
    }

    /// Breakpoint-table index serving a `bytes`-sized batch: the first
    /// rung whose probe is at least the batch, clamped to the largest.
    fn bp_index(&self, bytes: u64) -> usize {
        self.breakpoints.partition_point(|&bp| bp < bytes).min(self.breakpoints.len() - 1)
    }

    /// Cheapest route for one `src → dst` device transfer of `bytes`
    /// (O(1) table lookup; the batch size selects the breakpoint table,
    /// so tiny latency-bound batches may route differently from bulk
    /// bandwidth-bound ones). `src == dst` is never routed — debug
    /// builds fail loudly so a caller bug cannot price phantom traffic.
    pub fn route(&self, src: u32, dst: u32, bytes: u64) -> &Route {
        debug_assert_ne!(src, dst, "route({src}, {dst}): src == dst is never routed");
        let nd = self.num_devices;
        &self.routes[(self.bp_index(bytes) * nd + src as usize) * nd + dst as usize]
    }

    /// Re-route fallback for `src → dst` at `bytes`: the cheapest peer
    /// path avoiding the primary route's first hop (for host-staged
    /// primaries, the cheapest peer path outright). The load-aware
    /// second pass offers it as a detour and split target; `None` when
    /// the peer fabric admits no such path.
    pub fn alt_route(&self, src: u32, dst: u32, bytes: u64) -> Option<&[usize]> {
        debug_assert_ne!(src, dst, "alt_route({src}, {dst}): src == dst is never routed");
        let nd = self.num_devices;
        self.alt_routes[(self.bp_index(bytes) * nd + src as usize) * nd + dst as usize].as_deref()
    }

    /// Serialisation time of one `bytes`-sized batch crossing the hop
    /// chain `hops` end to end (contention-free).
    ///
    /// Store-and-forward (any hop without a cut-through chunk): the sum
    /// of every hop's transfer time — a hop cannot start until the
    /// previous one delivered the whole batch. With cut-through on every
    /// hop the chain pipelines chunks of the smallest advertised size
    /// `c`: the first chunk ramps across all hops, then the remaining
    /// `⌈bytes/c⌉ − 1` chunks drain at the bottleneck hop's chunk rate —
    ///
    /// ```text
    /// T = min( Σᵢ Tᵢ(bytes),  Σᵢ Tᵢ(c) + (⌈bytes/c⌉ − 1) · maxᵢ Tᵢ(c) )
    /// ```
    ///
    /// (the `min` models a forwarder that falls back to store-and-forward
    /// when per-chunk launch latency would dominate, so cut-through never
    /// prices a chain above the store-and-forward sum).
    pub fn chain_time(&self, hops: &[usize], bytes: u64) -> SimTime {
        let store_forward: SimTime = hops.iter().map(|&l| self.transfer_time(l, bytes)).sum();
        if bytes == 0 || hops.len() < 2 {
            return store_forward;
        }
        let mut chunk = u64::MAX;
        for &l in hops {
            match self.links[l].rate {
                LinkRate::Smooth(s) => match s.cut_through {
                    Some(c) => chunk = chunk.min(c),
                    None => return store_forward,
                },
                // Host-class hops never cut through.
                _ => return store_forward,
            }
        }
        if chunk >= bytes {
            return store_forward;
        }
        let chunks = bytes.div_ceil(chunk);
        let mut ramp = 0.0;
        let mut bottleneck = 0.0f64;
        for &l in hops {
            let t = self.transfer_time(l, chunk);
            ramp += t;
            bottleneck = bottleneck.max(t);
        }
        (ramp + (chunks - 1) as f64 * bottleneck).min(store_forward)
    }

    /// Price `route(src, dst, bytes)` contention-free: the direct link's
    /// transfer time, the forwarded chain's serialisation time
    /// ([`Interconnect::chain_time`] — store-and-forward, or pipelined
    /// under cut-through), or upload + download on the host root
    /// complex. Queueing happens in [`Interconnect::price_all_gather`].
    pub fn route_cost(&self, src: u32, dst: u32, bytes: u64) -> SimTime {
        match self.route(src, dst, bytes) {
            Route::Direct(l) => self.transfer_time(*l, bytes),
            Route::Forwarded(hops) => self.chain_time(hops, bytes),
            Route::HostStaged => 2.0 * self.transfer_time(HOST_LINK, bytes),
        }
    }

    /// Wall time of one transfer of `bytes` over link `link`.
    pub fn transfer_time(&self, link: usize, bytes: u64) -> SimTime {
        self.links[link].rate.transfer_time(bytes)
    }

    /// Does every ordered device pair price identically at every route
    /// breakpoint? On such a fabric — host-only (every pair stages through
    /// the one root complex), or a clique of identical links — no
    /// placement can be cheaper than any other as far as pair routing is
    /// concerned, so cost-driven placement planners short-circuit to
    /// their positional seed and stay bit-identical to it. The comparison
    /// is exact (`==` on the priced f64): pairs on a uniform fabric run
    /// the identical arithmetic, so no tolerance is needed.
    pub fn is_uniform_fabric(&self) -> bool {
        if self.num_devices <= 2 {
            // 0 or 1 devices route nothing; 2 devices have one ordered
            // pair per direction and both directions share one link spec.
            return true;
        }
        for &probe in &self.breakpoints {
            let reference = self.route_cost(0, 1, probe);
            for src in 0..self.num_devices as u32 {
                for dst in 0..self.num_devices as u32 {
                    if src != dst && self.route_cost(src, dst, probe) != reference {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Peer-served zero-copy rung: the factor by which serving `reader`'s
    /// on-demand zero-copy reads from a warm copy held by `holder` (over
    /// their direct peer link) scales formula (3)'s host-staged `Tiz`.
    ///
    /// The zero-copy engine's baseline reads pinned *host* memory through
    /// the root complex; when the two devices share a direct NVLink-class
    /// link that moves the same bytes faster, the read stream can be
    /// served peer-to-peer instead and `Tiz` shrinks by the ratio of the
    /// two links' bulk transfer times. `None` when there is no direct
    /// link or the link is no faster than host staging (the rung only
    /// ever *improves* the crossover, mirroring the strict-improvement
    /// routing passes).
    pub fn peer_read_scale(&self, reader: u32, holder: u32) -> Option<f64> {
        if reader == holder {
            return None;
        }
        let link = self.peer_link(reader, holder)?;
        let peer = self.transfer_time(link, ROUTE_PROBE_BYTES);
        let host = self.transfer_time(HOST_LINK, ROUTE_PROBE_BYTES);
        (peer < host && host > 0.0).then(|| peer / host)
    }

    /// The endpoint of peer link `link` that is not `device`.
    fn other_end(&self, link: usize, device: u32) -> u32 {
        // hyt-lint: allow(unwrap-in-lib) -- callers only pass peer-link ids, and every peer link is constructed with Some(endpoints); only HOST_LINK has None
        let (a, b) = self.links[link].endpoints.expect("peer link has endpoints");
        if device == a {
            b
        } else {
            a
        }
    }

    /// Occupy `link` in the direction leaving `from` with one transfer of
    /// `bytes`; returns the device at the other end.
    fn occupy(&self, report: &mut ExchangeReport, from: u32, link: usize, bytes: u64) -> u32 {
        let t = self.transfer_time(link, bytes);
        // hyt-lint: allow(unwrap-in-lib) -- occupy is only invoked on peer links, which are always constructed with Some(endpoints)
        let (a, _) = self.links[link].endpoints.expect("peer link has endpoints");
        report.per_queue_busy[self.queue(link, from != a)] += t;
        report.per_link_busy[link] += t;
        self.other_end(link, from)
    }

    /// Price the end-of-iteration frontier all-gather: participating
    /// device `d` publishes `owned[d]` bytes and must receive every other
    /// participant's batch.
    ///
    /// Each pair's batch follows its cheapest route: a direct peer link,
    /// a forwarded multi-hop peer path (the batch pays — and occupies —
    /// every hop), or the shared host staging path — one upload per
    /// source (the host copy is reused for every host-routed destination)
    /// and one aggregated download per destination, exactly the legacy
    /// shared-bus exchange. Legs queue per *direction* queue (full-duplex
    /// links run their two directions concurrently) and overlap across
    /// queues, so the makespan is the busiest queue — floored by the
    /// longest single-batch store-and-forward chain ([`ExchangeReport::
    /// critical_path`]): a forwarded batch's hops serialise even when
    /// their queues are otherwise idle, so the exchange can never finish
    /// before its slowest routed batch has crossed every hop. (Still a
    /// relaxation: hop/queue interleavings beyond those two bounds are
    /// not played out.)
    ///
    /// Host legs are queued in ascending device order, upload before
    /// download — the legacy pricing order — which keeps the host-only
    /// result bit-identical to the pre-topology serial bus model.
    #[must_use = "an ExchangeReport is a priced plan, not an action; dropping it discards the pricing"]
    pub fn price_all_gather(&self, owned: &[u64], participates: &[bool]) -> ExchangeReport {
        match self.all_gather_payload(owned, participates) {
            None => self.empty_report(),
            Some(payload) => {
                let frags = self.static_fragments(owned, participates);
                self.evaluate_fragments(&frags, payload)
            }
        }
    }

    /// [`Interconnect::price_all_gather`] followed by the **load-aware
    /// second pass**: a deterministic greedy that, given the static
    /// pass's per-queue busy times, re-routes batches off the busiest
    /// queue (or off the binding forwarded chain) onto their
    /// next-cheapest path — another breakpoint's route, the
    /// first-hop-disjoint detour, host staging at its *marginal*
    /// (amortised-upload) cost, or an even split across two disjoint
    /// peer chains (the two ring directions) — accepting a move only
    /// when it strictly lowers the priced makespan.
    ///
    /// At most [`MAX_REROUTE_ROUNDS`] moves are applied, each strictly
    /// improving, so the result is **never worse than the static
    /// routing** and the pass always terminates. Each candidate move is
    /// probed by re-pricing the whole fragment set — O(D²) per probe,
    /// which is trivial at simulated device counts and keeps the probe
    /// arithmetic bit-identical to the final evaluation (a delta
    /// evaluator is the natural optimisation if D ever grows large). Payload bytes are
    /// invariant; only the per-link occupancy (and the
    /// [`ExchangeReport::rerouted_bytes`] / [`ExchangeReport::
    /// split_bytes`] accounting) may differ from the static pass.
    #[must_use = "an ExchangeReport is a priced plan, not an action; dropping it discards the pricing"]
    pub fn price_all_gather_load_aware(
        &self,
        owned: &[u64],
        participates: &[bool],
    ) -> ExchangeReport {
        let Some(payload) = self.all_gather_payload(owned, participates) else {
            return self.empty_report();
        };
        let mut frags = self.static_fragments(owned, participates);
        let mut best = self.evaluate_fragments(&frags, payload);
        for _round in 0..MAX_REROUTE_ROUNDS {
            let Some(bottleneck) = self.reroute_candidates(&frags, &best) else { break };
            let mut improved = false;
            'moves: for i in bottleneck {
                for mv in self.candidate_moves(&frags[i]) {
                    let tentative = apply_move(&frags, i, &mv);
                    let report = self.evaluate_fragments(&tentative, payload);
                    if report.makespan < best.makespan * (1.0 - REROUTE_EPS) {
                        frags = tentative;
                        best = report;
                        improved = true;
                        break 'moves;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        best
    }

    /// Logical all-gather payload, or `None` when the exchange is free
    /// (≤ 1 participant, or nothing published). Topology-invariant:
    /// every participant receives every other participant's records,
    /// however routed.
    fn all_gather_payload(&self, owned: &[u64], participates: &[bool]) -> Option<u64> {
        assert_eq!(owned.len(), self.num_devices, "one publication size per device");
        assert_eq!(participates.len(), self.num_devices);
        let holders = participates.iter().filter(|&&p| p).count();
        if holders <= 1 {
            return None; // nobody to talk to
        }
        let total: u64 = (0..self.num_devices).filter(|&d| participates[d]).map(|d| owned[d]).sum();
        if total == 0 {
            return None;
        }
        Some(total * (holders as u64 - 1))
    }

    /// A zeroed report with the per-link / per-queue vectors sized.
    fn empty_report(&self) -> ExchangeReport {
        ExchangeReport {
            per_link_busy: vec![0.0; self.links.len()],
            per_queue_busy: vec![0.0; self.num_queues],
            ..Default::default()
        }
    }

    /// One fragment per ordered participant pair with a non-empty batch,
    /// on its sized static route, in ascending `(src, dst)` order (the
    /// legacy pricing order, so the static evaluation is bit-identical
    /// to the pre-sized accumulation).
    fn static_fragments(&self, owned: &[u64], participates: &[bool]) -> Vec<Fragment> {
        let nd = self.num_devices;
        let mut frags = Vec::new();
        for s in (0..nd as u32).filter(|&s| participates[s as usize]) {
            let b = owned[s as usize];
            if b == 0 {
                continue;
            }
            for d in (0..nd as u32).filter(|&d| d != s && participates[d as usize]) {
                let path = frag_path_of(self.route(s, d, b));
                frags.push(Fragment {
                    src: s,
                    dst: d,
                    bytes: b,
                    static_path: path.clone(),
                    path,
                    split: false,
                    can_split: true,
                });
            }
        }
        frags
    }

    /// Price one fragment assignment: peer fragments occupy every hop's
    /// direction queue (store-and-forward occupancy — cut-through only
    /// lowers the chain's *serialisation floor*, the same bytes still
    /// cross every wire); host fragments accumulate one amortised upload
    /// per source (staged destinations share the host copy, so the
    /// upload is the largest staged fragment — exact, because only
    /// unsplit fragments may host-stage and each carries the source's
    /// full publication, reproducing the legacy per-source upload) and
    /// one aggregated download per destination, queued in ascending
    /// device order, upload before download — the legacy pricing order. The makespan
    /// is the busiest queue floored by the slowest fragment's chain
    /// serialisation ([`Interconnect::chain_time`], evaluated
    /// *per fragment*, so a split batch floors by its slowest half, not
    /// the original batch).
    fn evaluate_fragments(&self, frags: &[Fragment], payload: u64) -> ExchangeReport {
        let nd = self.num_devices;
        let mut report = self.empty_report();
        report.payload_bytes = payload;
        let mut host_up = vec![0u64; nd];
        let mut host_down = vec![0u64; nd];
        for f in frags {
            if f.bytes == 0 {
                continue;
            }
            match &f.path {
                FragPath::Peer(hops) => {
                    let mut cur = f.src;
                    for &link in hops {
                        cur = self.occupy(&mut report, cur, link, f.bytes);
                        report.peer_bytes += f.bytes;
                    }
                    debug_assert_eq!(cur, f.dst, "peer path must end at the destination");
                    if hops.len() > 1 {
                        report.forwarded_bytes += f.bytes * (hops.len() as u64 - 1);
                        // The fragment's hops depend on each other; a
                        // direct or host-staged leg never exceeds its
                        // own queue's busy time, so only forwarded
                        // chains can raise the floor.
                        report.critical_path =
                            report.critical_path.max(self.chain_time(hops, f.bytes));
                    }
                }
                FragPath::Host => {
                    host_up[f.src as usize] = host_up[f.src as usize].max(f.bytes);
                    host_down[f.dst as usize] += f.bytes;
                }
            }
            if f.split {
                report.split_bytes += f.bytes;
            } else if f.path != f.static_path {
                report.rerouted_bytes += f.bytes;
            }
        }
        for d in 0..nd {
            for b in [host_up[d], host_down[d]] {
                if b > 0 {
                    let t = self.transfer_time(HOST_LINK, b);
                    report.per_queue_busy[self.queue(HOST_LINK, false)] += t;
                    report.per_link_busy[HOST_LINK] += t;
                    report.host_bytes += b;
                }
            }
        }
        report.host_time = report.per_link_busy[HOST_LINK];
        report.peer_time = report.per_link_busy[HOST_LINK + 1..].iter().sum();
        report.makespan = report.per_queue_busy.iter().fold(report.critical_path, |a, &b| a.max(b));
        report
    }

    /// Does this fragment occupy queue `q` on its current path?
    fn frag_touches(&self, f: &Fragment, q: usize) -> bool {
        match &f.path {
            FragPath::Host => self.queue(HOST_LINK, false) == q,
            FragPath::Peer(hops) => {
                let mut cur = f.src;
                for &link in hops {
                    // hyt-lint: allow(unwrap-in-lib) -- FragPath::Peer hop lists come from extract_hops over peer links, which all carry Some(endpoints)
                    let (a, _) = self.links[link].endpoints.expect("peer link has endpoints");
                    if self.queue(link, cur != a) == q {
                        return true;
                    }
                    cur = self.other_end(link, cur);
                }
                false
            }
        }
    }

    /// Fragments the greedy may move this round, in deterministic order:
    /// every fragment touching the busiest queue (ties break toward the
    /// lowest queue id), plus — when the forwarded-chain floor is what
    /// binds the makespan — the fragments whose chains sit on that
    /// floor. `None` when the exchange is already empty.
    fn reroute_candidates(&self, frags: &[Fragment], best: &ExchangeReport) -> Option<Vec<usize>> {
        if best.makespan <= 0.0 {
            return None;
        }
        let mut busiest = 0usize;
        for (q, &b) in best.per_queue_busy.iter().enumerate() {
            if b > best.per_queue_busy[busiest] {
                busiest = q;
            }
        }
        let mut out: Vec<usize> =
            (0..frags.len()).filter(|&i| self.frag_touches(&frags[i], busiest)).collect();
        if best.critical_path >= best.per_queue_busy[busiest] * (1.0 - REROUTE_EPS) {
            for (i, f) in frags.iter().enumerate() {
                if let FragPath::Peer(hops) = &f.path {
                    if hops.len() > 1
                        && self.chain_time(hops, f.bytes)
                            >= best.critical_path * (1.0 - REROUTE_EPS)
                        && !out.contains(&i)
                    {
                        out.push(i);
                    }
                }
            }
        }
        Some(out)
    }

    /// Candidate moves for one fragment, in deterministic order: the
    /// other breakpoints' routes for its pair (ascending rung), the
    /// first-hop-disjoint fallback path at its own rung, host staging,
    /// and — for a not-yet-split peer-routed batch — an even split
    /// across its current path and the fallback.
    fn candidate_moves(&self, f: &Fragment) -> Vec<RerouteMove> {
        let nd = self.num_devices;
        let mut paths: Vec<FragPath> = Vec::new();
        for bi in 0..self.breakpoints.len() {
            let r = &self.routes[(bi * nd + f.src as usize) * nd + f.dst as usize];
            let p = frag_path_of(r);
            if p != f.path && !paths.contains(&p) {
                paths.push(p);
            }
        }
        let alt = self.alt_route(f.src, f.dst, f.bytes);
        if let Some(hops) = alt {
            let p = FragPath::Peer(hops.to_vec());
            if p != f.path && !paths.contains(&p) {
                paths.push(p);
            }
        }
        if f.path != FragPath::Host && !paths.contains(&FragPath::Host) {
            paths.push(FragPath::Host);
        }
        // The halves of a split batch are *disjoint* record subsets, so
        // they may never host-stage: the amortised host upload is priced
        // as the largest staged fragment per source (exact when every
        // staged fragment from a source carries the source's full
        // publication), and a staged half would underprice the union.
        // Splits therefore stay on the peer fabric.
        if !f.can_split {
            paths.retain(|p| matches!(p, FragPath::Peer(_)));
        }
        let mut moves: Vec<RerouteMove> = paths.into_iter().map(RerouteMove::Whole).collect();
        if f.can_split && f.bytes >= 2 && matches!(f.path, FragPath::Peer(_)) {
            if let Some(hops) = alt {
                if FragPath::Peer(hops.to_vec()) != f.path {
                    moves.push(RerouteMove::Split(hops.to_vec()));
                }
            }
        }
        moves
    }
}

/// Reconstruct the hop list of a settled Dijkstra path `src → dst` (link
/// ids in travel order). Requires `dist[dst]` finite.
fn extract_hops(src: usize, dst: usize, via: &[Option<usize>], prev: &[usize]) -> Vec<usize> {
    let mut hops = Vec::new();
    let mut cur = dst;
    while cur != src {
        // hyt-lint: allow(unwrap-in-lib) -- Dijkstra settles a vertex only by relaxing some link into it, recording via[cur] = Some(link)
        hops.push(via[cur].expect("finite distance implies an arriving link"));
        cur = prev[cur];
    }
    hops.reverse();
    hops
}

/// Ring neighbour pairs for `nd` devices: `nd = 2` has a single link,
/// `nd ≤ 1` none.
fn ring_pairs(nd: usize) -> Vec<(u32, u32)> {
    match nd {
        0 | 1 => Vec::new(),
        2 => vec![(0, 1)],
        _ => (0..nd as u32).map(|d| (d, (d + 1) % nd as u32)).collect(),
    }
}

/// Routed, per-queue-contended pricing of one frontier all-gather.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExchangeReport {
    /// Wall time until the last queue drains (legs on disjoint queues
    /// overlap; legs sharing a queue serialise), floored by
    /// [`ExchangeReport::critical_path`].
    pub makespan: SimTime,
    /// Longest single-batch store-and-forward chain: the hops of a
    /// forwarded batch serialise among themselves even when their
    /// queues are otherwise idle, so the makespan can never undercut
    /// this. Zero when no route forwards.
    pub critical_path: SimTime,
    /// Host root-complex busy time.
    pub host_time: SimTime,
    /// Total peer-link busy time (all peer links, both directions).
    pub peer_time: SimTime,
    /// Bytes that crossed the host root complex (staged uploads +
    /// downloads; a staged record is counted on both hops).
    pub host_bytes: u64,
    /// Bytes that crossed peer links (a forwarded record is counted on
    /// every hop, mirroring the host staging convention).
    pub peer_bytes: u64,
    /// Bytes relayed through intermediate devices: for a batch forwarded
    /// over `k` hops, the `(k − 1) ·` batch bytes that intermediate
    /// devices carried on behalf of the pair. Zero when every route is
    /// direct or host-staged.
    pub forwarded_bytes: u64,
    /// Bytes of whole batches the load-aware second pass moved off their
    /// sized static route (zero for the static pass, and when no
    /// re-route strictly improved the makespan).
    pub rerouted_bytes: u64,
    /// Bytes travelling on the secondary halves of batches the
    /// load-aware pass split across two disjoint peer paths (zero when
    /// nothing split).
    pub split_bytes: u64,
    /// Logical payload delivered (`Σ owned · (participants − 1)`) —
    /// identical for every topology, unlike the per-link byte counts.
    pub payload_bytes: u64,
    /// Busy time per link (index = link id; `HOST_LINK` first). For a
    /// full-duplex link this is the *sum* of its two direction queues
    /// (total wire occupancy).
    pub per_link_busy: Vec<SimTime>,
    /// Busy time per contention queue (host root complex first, then
    /// each link's queues in link order). The makespan is the maximum
    /// entry.
    pub per_queue_busy: Vec<SimTime>,
}

impl ExchangeReport {
    /// How much of this exchange a concurrent window of `window` seconds
    /// can hide, assuming the window starts at the same barrier the
    /// exchange legs start at.
    ///
    /// Every contention queue begins draining at the barrier and the
    /// queues run concurrently, so after `window` seconds of overlapped
    /// work the residual exchange time is `max(makespan − window, 0)` —
    /// the makespan here being exactly the busiest entry of
    /// [`per_queue_busy`](ExchangeReport::per_queue_busy) (floored by
    /// [`critical_path`](ExchangeReport::critical_path)). Equivalently,
    /// the hidden portion is `min(makespan, window)`: a window longer
    /// than the busiest queue cannot hide more exchange than exists, and
    /// a window of zero (no next iteration) hides nothing. This is the
    /// per-queue-derived overlap window sizing of the iteration driver's
    /// `overlap_exchange` mode.
    pub fn hidden_under(&self, window: SimTime) -> SimTime {
        self.makespan.min(window.max(0.0))
    }

    /// The exchange time left on the critical path after a concurrent
    /// window of `window` seconds: `makespan − hidden_under(window)`.
    pub fn exposed_after(&self, window: SimTime) -> SimTime {
        self.makespan - self.hidden_under(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn pcie() -> PcieModel {
        PcieModel::pcie3()
    }

    fn legacy_serial_exchange(
        pcie: &PcieModel,
        owned: &[u64],
        participates: &[bool],
    ) -> (f64, u64) {
        // The PR 2 pricing, verbatim: per participating device, one
        // upload and one download on the single shared bus.
        let total: u64 = owned.iter().zip(participates).filter(|&(_, &p)| p).map(|(&o, _)| o).sum();
        let mut time = 0.0;
        let mut bytes = 0u64;
        for (d, &o) in owned.iter().enumerate() {
            if !participates[d] {
                continue;
            }
            for b in [o, total - o] {
                if b > 0 {
                    time += pcie.explicit_copy_time(b);
                    bytes += b;
                }
            }
        }
        (time, bytes)
    }

    #[test]
    fn topology_kind_parse_roundtrips() {
        for k in TopologyKind::ALL {
            assert_eq!(TopologyKind::parse(k.name()), Some(k));
        }
        assert_eq!(TopologyKind::parse(TopologyKind::Mesh.name()), Some(TopologyKind::Mesh));
        assert_eq!(TopologyKind::parse("a2a"), Some(TopologyKind::AllToAll));
        assert_eq!(TopologyKind::parse("HOST"), Some(TopologyKind::HostOnly));
        assert_eq!(TopologyKind::parse("torus"), None);
    }

    #[test]
    fn link_counts_per_topology() {
        let p = pcie();
        let s = LinkSpec::nvlink();
        assert_eq!(Interconnect::build(TopologyKind::HostOnly, 4, p, s).num_links(), 1);
        assert_eq!(Interconnect::build(TopologyKind::Ring, 4, p, s).num_links(), 1 + 4);
        assert_eq!(Interconnect::build(TopologyKind::Ring, 2, p, s).num_links(), 1 + 1);
        assert_eq!(Interconnect::build(TopologyKind::Ring, 1, p, s).num_links(), 1);
        assert_eq!(Interconnect::build(TopologyKind::AllToAll, 4, p, s).num_links(), 1 + 6);
    }

    #[test]
    fn queue_counts_follow_duplex() {
        let p = pcie();
        // Full-duplex (default): host queue + 2 per peer link.
        let full = Interconnect::build(TopologyKind::Ring, 4, p, LinkSpec::nvlink());
        assert_eq!(full.num_queues(), 1 + 2 * 4);
        // Half-duplex: one queue per link, the PR 3 layout.
        let half = Interconnect::build(TopologyKind::Ring, 4, p, LinkSpec::nvlink().half_duplex());
        assert_eq!(half.num_queues(), 1 + 4);
        assert_eq!(half.queue(1, false), half.queue(1, true));
        assert_ne!(full.queue(1, false), full.queue(1, true));
        // The host root complex is always one queue.
        assert_eq!(full.queue(HOST_LINK, false), full.queue(HOST_LINK, true));
        assert_eq!(Interconnect::host_only(4, p).num_queues(), 1);
    }

    #[test]
    fn ring_routes_neighbours_direct_and_opposites_forwarded() {
        let ic = Interconnect::build(TopologyKind::Ring, 4, pcie(), LinkSpec::nvlink());
        assert!(matches!(ic.route(0, 1, ROUTE_PROBE_BYTES), Route::Direct(_)));
        assert!(matches!(ic.route(3, 0, ROUTE_PROBE_BYTES), Route::Direct(_)));
        // Opposite pairs forward two fast hops rather than paying two
        // TLP-quantised host copies.
        match ic.route(0, 2, ROUTE_PROBE_BYTES) {
            Route::Forwarded(hops) => assert_eq!(hops.len(), 2),
            r => panic!("expected a 2-hop forward, got {r:?}"),
        }
        assert!(matches!(ic.route(1, 3, ROUTE_PROBE_BYTES), Route::Forwarded(_)));
        // Peer lookup is direction-agnostic and O(1).
        assert_eq!(ic.peer_link(1, 0), ic.peer_link(0, 1));
        assert_eq!(ic.peer_link(0, 2), None);
    }

    #[test]
    fn all_to_all_routes_everything_direct() {
        let ic = Interconnect::build(TopologyKind::AllToAll, 5, pcie(), LinkSpec::nvlink());
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    assert!(
                        matches!(ic.route(a, b, ROUTE_PROBE_BYTES), Route::Direct(_)),
                        "{a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn host_only_routes_everything_host_staged() {
        let ic = Interconnect::host_only(3, pcie());
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    assert_eq!(ic.route(a, b, ROUTE_PROBE_BYTES), &Route::HostStaged);
                }
            }
        }
    }

    #[test]
    fn slow_bridge_shifts_its_pair_back_to_host_staging() {
        // D = 8 uniform ring: every pair rides the peer fabric (max 4
        // hops beat two TLP-quantised host copies).
        let uniform = Interconnect::build(TopologyKind::Ring, 8, pcie(), LinkSpec::nvlink());
        for d in 1..8u32 {
            assert_ne!(uniform.route(0, d, ROUTE_PROBE_BYTES), &Route::HostStaged, "0->{d}");
        }
        // Derate the (0, 1) bridge to 2 GB/s: the direct hop is slower
        // than host staging and so is the 7-hop detour, so exactly that
        // pair falls back to the host; its neighbours re-route around.
        let slow = uniform.clone().with_link_spec(0, 1, LinkSpec::with_nominal_bw(2.0e9));
        assert_eq!(slow.route(0, 1, ROUTE_PROBE_BYTES), &Route::HostStaged);
        assert_eq!(slow.route(1, 0, ROUTE_PROBE_BYTES), &Route::HostStaged);
        // A pair whose short path crosses the slow bridge detours the
        // long way around instead (0 → 7 → … → 3 is five fast hops,
        // cheaper than both the bridge and the host).
        match slow.route(0, 3, ROUTE_PROBE_BYTES) {
            Route::Forwarded(hops) => {
                assert_eq!(hops.len(), 5, "must detour away from the slow bridge")
            }
            r => panic!("expected a detour, got {r:?}"),
        }
        // Route costs still respect the choice: host staging is cheapest
        // for the slow pair at the probe size.
        let probe = ROUTE_PROBE_BYTES;
        let direct_slow = slow.transfer_time(slow.peer_link(0, 1).unwrap(), probe);
        assert!(slow.route_cost(0, 1, probe) < direct_slow);
    }

    #[test]
    fn host_only_all_gather_is_bit_identical_to_legacy_serial_bus() {
        let p = pcie();
        let ic = Interconnect::host_only(4, p);
        let owned = [1200u64, 0, 96, 50_000];
        let participates = [true, true, true, false];
        let r = ic.price_all_gather(&owned, &participates);
        let (legacy_time, legacy_bytes) = legacy_serial_exchange(&p, &owned, &participates);
        assert_eq!(r.makespan, legacy_time, "host-only must reduce to the serial bus exactly");
        assert_eq!(r.host_time, legacy_time);
        assert_eq!(r.host_bytes, legacy_bytes);
        assert_eq!(r.peer_bytes, 0);
        assert_eq!(r.forwarded_bytes, 0);
        assert_eq!(r.peer_time, 0.0);
        // Payload counts each record once per receiving peer.
        assert_eq!(r.payload_bytes, (1200 + 96) * 2);
    }

    #[test]
    fn uniform_half_duplex_clique_is_bit_identical_to_pr3_per_link_queues() {
        // The PR 3 pricing for an all-to-all clique, verbatim: every
        // ordered pair's batch rides its direct link's single queue.
        let p = pcie();
        let spec = LinkSpec::nvlink().half_duplex();
        let ic = Interconnect::build(TopologyKind::AllToAll, 4, p, spec);
        let owned = [400u64, 900, 16, 120];
        let participates = [true; 4];
        let r = ic.price_all_gather(&owned, &participates);
        let mut link_busy = vec![0.0f64; ic.num_links()];
        for s in 0..4u32 {
            for d in (0..4u32).filter(|&d| d != s) {
                let l = ic.peer_link(s, d).unwrap();
                link_busy[l] += spec.transfer_time(owned[s as usize]);
            }
        }
        let makespan = link_busy.iter().fold(0.0f64, |a, &b| a.max(b));
        assert_eq!(r.makespan, makespan);
        assert_eq!(r.per_link_busy, link_busy);
        assert_eq!(r.host_bytes, 0);
        assert_eq!(r.forwarded_bytes, 0);
    }

    #[test]
    fn payload_bytes_are_topology_invariant() {
        let p = pcie();
        let owned = [400u64, 900, 16, 0];
        let participates = [true; 4];
        let payloads: Vec<u64> = TopologyKind::ALL
            .iter()
            .map(|&k| {
                Interconnect::build(k, 4, p, LinkSpec::nvlink())
                    .price_all_gather(&owned, &participates)
                    .payload_bytes
            })
            .collect();
        assert_eq!(payloads[0], (400 + 900 + 16) * 3);
        assert!(payloads.windows(2).all(|w| w[0] == w[1]), "{payloads:?}");
    }

    #[test]
    fn peer_links_offload_and_shorten_the_exchange() {
        let p = pcie();
        // Large enough batches that bandwidth, not launch latency or TLP
        // quantisation, dominates (tiny copies price identically on every
        // route, which is the realistic fixed-cost floor).
        let owned = [256_000u64; 4];
        let participates = [true; 4];
        let host = Interconnect::build(TopologyKind::HostOnly, 4, p, LinkSpec::nvlink())
            .price_all_gather(&owned, &participates);
        let ring = Interconnect::build(TopologyKind::Ring, 4, p, LinkSpec::nvlink())
            .price_all_gather(&owned, &participates);
        let a2a = Interconnect::build(TopologyKind::AllToAll, 4, p, LinkSpec::nvlink())
            .price_all_gather(&owned, &participates);
        assert!(ring.makespan < host.makespan, "ring {} host {}", ring.makespan, host.makespan);
        assert!(a2a.makespan <= ring.makespan, "a2a {} ring {}", a2a.makespan, ring.makespan);
        assert!(ring.host_bytes < host.host_bytes);
        assert_eq!(a2a.host_bytes, 0, "a clique never stages through the host");
        assert!(a2a.peer_bytes > 0 && ring.peer_bytes > 0);
        // Opposite ring pairs forward through a neighbour now.
        assert!(ring.forwarded_bytes > 0);
        assert_eq!(a2a.forwarded_bytes, 0, "a clique never forwards");
    }

    #[test]
    fn full_duplex_overlaps_the_symmetric_legs() {
        // Two devices, one link, symmetric batches: half-duplex
        // serialises the two directions, full-duplex overlaps them
        // exactly — each direction queue carries one leg.
        let p = pcie();
        let owned = [64_000u64, 64_000];
        let participates = [true; 2];
        let leg = LinkSpec::nvlink().transfer_time(64_000);
        let half = Interconnect::build(TopologyKind::Ring, 2, p, LinkSpec::nvlink().half_duplex())
            .price_all_gather(&owned, &participates);
        let full = Interconnect::build(TopologyKind::Ring, 2, p, LinkSpec::nvlink())
            .price_all_gather(&owned, &participates);
        assert!((half.makespan - 2.0 * leg).abs() < EPS);
        assert!((full.makespan - leg).abs() < EPS, "symmetric legs must overlap");
        // Wire occupancy and byte counts are duplex-invariant.
        assert_eq!(full.per_link_busy, half.per_link_busy);
        assert_eq!(full.peer_bytes, half.peer_bytes);
        assert_eq!(full.payload_bytes, half.payload_bytes);
    }

    #[test]
    fn sparse_forwarded_exchange_cannot_undercut_its_hop_chain() {
        // One publisher, one opposite-side receiver on a 4-ring: the
        // batch crosses two hops that depend on each other, so even
        // though each hop sits on its own otherwise-idle queue (no
        // other leg shares them), the exchange takes two hop times, not
        // one.
        let ic = Interconnect::build(TopologyKind::Ring, 4, pcie(), LinkSpec::nvlink());
        let b = 200_000u64;
        let r = ic.price_all_gather(&[b, 0, 0, 0], &[true, false, true, false]);
        let hop = LinkSpec::nvlink().transfer_time(b);
        assert!((r.critical_path - 2.0 * hop).abs() < EPS);
        assert!((r.makespan - 2.0 * hop).abs() < EPS, "hop precedence must floor the makespan");
        let busiest = r.per_queue_busy.iter().fold(0.0f64, |a, &x| a.max(x));
        assert!((busiest - hop).abs() < EPS, "each queue carries one hop");
    }

    #[test]
    fn forwarded_legs_price_as_the_sum_of_their_hops() {
        let ic = Interconnect::build(TopologyKind::Ring, 4, pcie(), LinkSpec::nvlink());
        let b = 100_000u64;
        let hop = LinkSpec::nvlink().transfer_time(b);
        // Distance-2 pair: cost is exactly two hops, never less (the
        // triangle inequality over its legs).
        assert!((ic.route_cost(0, 2, b) - 2.0 * hop).abs() < EPS);
        assert!(ic.route_cost(0, 2, b) >= ic.route_cost(0, 1, b) - EPS);
        // And the direct pair prices one hop.
        assert!((ic.route_cost(0, 1, b) - hop).abs() < EPS);
    }

    #[test]
    fn mesh_builder_prices_mixed_generations_per_link() {
        let p = pcie();
        let fast = LinkSpec::with_nominal_bw(200.0e9);
        let slow = LinkSpec::with_nominal_bw(25.0e9);
        let ic = Interconnect::mesh(3, p, &[(0, 1, fast), (1, 2, slow)]);
        assert_eq!(ic.kind(), TopologyKind::Mesh, "a sparse mesh is not a clique");
        assert_eq!(ic.num_links(), 3);
        // A mesh kind builds bare (host link only) from the uniform
        // builder; its links come from the caller.
        assert_eq!(Interconnect::build(TopologyKind::Mesh, 3, p, fast).num_links(), 1);
        let b = 1 << 20;
        let l01 = ic.peer_link(0, 1).unwrap();
        let l12 = ic.peer_link(1, 2).unwrap();
        assert!(ic.transfer_time(l01, b) < ic.transfer_time(l12, b));
        // (0, 2) has no link: it forwards over both generations.
        match ic.route(0, 2, ROUTE_PROBE_BYTES) {
            Route::Forwarded(hops) => assert_eq!(hops, &vec![l01, l12]),
            r => panic!("expected forwarding, got {r:?}"),
        }
        let expect = ic.transfer_time(l01, b) + ic.transfer_time(l12, b);
        assert!((ic.route_cost(0, 2, b) - expect).abs() < EPS);
    }

    #[test]
    fn ring_with_specs_assigns_in_link_order() {
        let p = pcie();
        let specs = [
            LinkSpec::with_nominal_bw(50.0e9),
            LinkSpec::nvlink(),
            LinkSpec::with_nominal_bw(100.0e9),
        ];
        let ic = Interconnect::ring_with_specs(3, p, &specs);
        assert_eq!(ic.num_links(), 1 + 3);
        let l20 = ic.peer_link(2, 0).unwrap();
        let b = 1 << 20;
        // Link (2, 0) carries the 100 GB/s spec and is the fastest.
        for l in 1..ic.num_links() {
            if l != l20 {
                assert!(ic.transfer_time(l20, b) < ic.transfer_time(l, b) + EPS);
            }
        }
    }

    #[test]
    fn all_gather_degenerate_cases_are_free() {
        let ic = Interconnect::build(TopologyKind::Ring, 3, pcie(), LinkSpec::nvlink());
        // One participant: no peers.
        let r = ic.price_all_gather(&[10, 0, 0], &[true, false, false]);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.payload_bytes, 0);
        // Nothing to publish.
        let r = ic.price_all_gather(&[0, 0, 0], &[true, true, true]);
        assert_eq!(r.makespan, 0.0);
        assert_eq!((r.host_bytes, r.peer_bytes), (0, 0));
    }

    #[test]
    fn makespan_is_the_busiest_queue_floored_by_the_critical_path() {
        let ic = Interconnect::build(TopologyKind::Ring, 5, pcie(), LinkSpec::nvlink());
        let r = ic.price_all_gather(&[100, 2000, 3, 77, 900], &[true; 5]);
        let max = r.per_queue_busy.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!((r.makespan - max.max(r.critical_path)).abs() < EPS);
        for &busy in &r.per_queue_busy {
            assert!(busy <= r.makespan + EPS);
        }
        // Per-link busy sums its direction queues and tiles the class
        // totals.
        let mut q = 0;
        for (l, link) in ic.links().iter().enumerate() {
            let n = if matches!(link.rate, LinkRate::Smooth(s) if s.duplex == Duplex::Full) {
                2
            } else {
                1
            };
            let sum: f64 = r.per_queue_busy[q..q + n].iter().sum();
            assert!((r.per_link_busy[l] - sum).abs() < EPS);
            q += n;
        }
        let sum: f64 = r.per_link_busy.iter().sum();
        assert!((sum - r.host_time - r.peer_time).abs() < EPS);
    }

    /// A 3-device mesh whose (0, 1) pair has a slow direct bridge beside
    /// a fast 2-hop detour: bulk batches should forward, tiny ones go
    /// direct (two hop latencies cost more than the slow wire).
    fn slow_direct_fast_detour() -> Interconnect {
        let fast = LinkSpec::with_nominal_bw(50.0e9);
        let slow = LinkSpec::with_nominal_bw(2.0e9);
        Interconnect::mesh(3, pcie(), &[(0, 1, slow), (0, 2, fast), (1, 2, fast)])
    }

    #[test]
    fn breakpoint_ladder_is_sorted_deduped_and_defaults_to_the_single_probe() {
        let ic = Interconnect::build(TopologyKind::Ring, 4, pcie(), LinkSpec::nvlink());
        assert_eq!(ic.route_breakpoints(), &[ROUTE_PROBE_BYTES]);
        let laddered = ic.clone().with_route_breakpoints(&[1 << 20, 4 << 10, 4 << 10, 64 << 20]);
        assert_eq!(laddered.route_breakpoints(), &[4 << 10, 1 << 20, 64 << 20]);
        // Re-probing at the single legacy size reproduces the default
        // tables exactly.
        let same = laddered.with_route_breakpoints(&[ROUTE_PROBE_BYTES]);
        assert_eq!(same, ic);
    }

    #[test]
    fn sized_routes_let_tiny_batches_take_fewer_hops_than_bulk() {
        let ic = slow_direct_fast_detour().with_route_breakpoints(&ROUTE_BREAKPOINT_LADDER);
        // Bandwidth-bound bulk forwards over the fast detour…
        match ic.route(0, 1, 64 << 20) {
            Route::Forwarded(hops) => assert_eq!(hops.len(), 2),
            r => panic!("bulk should detour, got {r:?}"),
        }
        // …while the latency-bound tiny batch rides the slow wire
        // directly (one launch beats two).
        assert!(
            matches!(ic.route(0, 1, 4 << 10), Route::Direct(_)),
            "tiny batches should go direct, got {:?}",
            ic.route(0, 1, 4 << 10)
        );
        // Each choice is the cheaper one at its own size.
        let direct = ic.peer_link(0, 1).unwrap();
        assert!(ic.route_cost(0, 1, 4 << 10) <= ic.transfer_time(direct, 4 << 10) + EPS);
        assert!(ic.route_cost(0, 1, 64 << 20) < ic.transfer_time(direct, 64 << 20));
        // Sizes between rungs round up to the next rung's table.
        assert_eq!(ic.route(0, 1, (4 << 10) + 1), ic.route(0, 1, 64 << 10));
        // Sizes above the top rung use the top table.
        assert_eq!(ic.route(0, 1, 1 << 40), ic.route(0, 1, 64 << 20));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "src == dst is never routed")]
    fn routing_a_device_to_itself_fails_loudly() {
        let ic = Interconnect::build(TopologyKind::Ring, 4, pcie(), LinkSpec::nvlink());
        let _ = ic.route(2, 2, ROUTE_PROBE_BYTES);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn host_link_of_rejects_devices_the_topology_does_not_span() {
        let ic = Interconnect::build(TopologyKind::Ring, 4, pcie(), LinkSpec::nvlink());
        let _ = ic.host_link_of(4);
    }

    #[test]
    fn host_link_of_maps_every_spanned_device_to_the_root_complex() {
        let ic = Interconnect::build(TopologyKind::Ring, 4, pcie(), LinkSpec::nvlink());
        for d in 0..4 {
            assert_eq!(ic.host_link_of(d), HOST_LINK);
        }
    }

    #[test]
    fn alt_routes_offer_the_other_ring_direction() {
        let ic = Interconnect::build(TopologyKind::Ring, 6, pcie(), LinkSpec::nvlink());
        // Primary 0 → 2 goes clockwise (2 hops); the fallback must avoid
        // the primary's first link, i.e. detour counter-clockwise.
        let primary = match ic.route(0, 2, ROUTE_PROBE_BYTES) {
            Route::Forwarded(hops) => hops.clone(),
            r => panic!("expected forwarding, got {r:?}"),
        };
        let alt = ic.alt_route(0, 2, ROUTE_PROBE_BYTES).expect("a ring always has a detour");
        assert_eq!(alt.len(), 4, "counter-clockwise detour is 4 hops");
        assert_ne!(alt[0], primary[0], "fallback must avoid the primary's first hop");
        // A host-staged pair still exposes its (rejected) peer path as
        // the fallback.
        let slow = ic
            .clone()
            .with_link_spec(0, 1, LinkSpec::with_nominal_bw(0.1e9))
            .with_link_spec(5, 0, LinkSpec::with_nominal_bw(0.1e9));
        assert_eq!(slow.route(0, 3, ROUTE_PROBE_BYTES), &Route::HostStaged);
        assert!(slow.alt_route(0, 3, ROUTE_PROBE_BYTES).is_some());
    }

    #[test]
    fn cut_through_pipelines_a_long_detour_toward_the_bottleneck_hop() {
        let b = 64 << 20;
        let chunk = 4 << 20;
        let saf_spec = LinkSpec::with_nominal_bw(50.0e9);
        let ct_spec = saf_spec.with_cut_through(chunk);
        let line = |s: LinkSpec| Interconnect::mesh(4, pcie(), &[(0, 1, s), (1, 2, s), (2, 3, s)]);
        let saf = line(saf_spec);
        let ct = line(ct_spec);
        let hops: Vec<usize> = (0..3).map(|i| saf.peer_link(i, i + 1).unwrap()).collect();
        // Store-and-forward prices the sum of the hops; cut-through the
        // bottleneck stream plus a one-chunk ramp on the other hops.
        let hop_t = saf_spec.transfer_time(b);
        assert!((saf.chain_time(&hops, b) - 3.0 * hop_t).abs() < EPS);
        let chunk_t = ct_spec.transfer_time(chunk);
        let expect = 3.0 * chunk_t + (b / chunk - 1) as f64 * chunk_t;
        assert!((ct.chain_time(&hops, b) - expect).abs() < EPS);
        assert!(ct.chain_time(&hops, b) < saf.chain_time(&hops, b), "cut-through must win here");
        // Chunks at least the batch degenerate to store-and-forward, and
        // chunking never prices above it (the min clamps pathological
        // per-chunk latency).
        let huge = line(saf_spec.with_cut_through(b));
        assert_eq!(huge.chain_time(&hops, b), saf.chain_time(&hops, b));
        let tiny = line(saf_spec.with_cut_through(64));
        assert!(tiny.chain_time(&hops, b) <= saf.chain_time(&hops, b) + EPS);
    }

    #[test]
    fn cut_through_shrinks_the_sparse_detour_exchange_and_only_that() {
        // One publisher, one far receiver on a 4-link line: the makespan
        // is the 3-hop serialisation floor, which cut-through pipelines
        // down toward the bottleneck hop. Wire occupancy, byte counts
        // and payload stay identical.
        let b = 64 << 20;
        let spec = LinkSpec::with_nominal_bw(50.0e9);
        let line = |s: LinkSpec| Interconnect::mesh(4, pcie(), &[(0, 1, s), (1, 2, s), (2, 3, s)]);
        let owned = [b, 0, 0, 0];
        let participates = [true, false, false, true];
        let saf = line(spec).price_all_gather(&owned, &participates);
        let ct = line(spec.with_cut_through(4 << 20)).price_all_gather(&owned, &participates);
        assert!(ct.critical_path < saf.critical_path);
        assert!(ct.makespan < saf.makespan, "ct {} !< saf {}", ct.makespan, saf.makespan);
        assert_eq!(ct.per_link_busy, saf.per_link_busy, "same bytes cross every wire");
        assert_eq!(ct.per_queue_busy, saf.per_queue_busy);
        assert_eq!(ct.peer_bytes, saf.peer_bytes);
        assert_eq!(ct.forwarded_bytes, saf.forwarded_bytes);
        assert_eq!(ct.payload_bytes, saf.payload_bytes);
    }

    #[test]
    fn load_aware_pass_splits_the_skewed_ring_and_strictly_improves() {
        // Device 0 publishes ~80x more than anyone else on a D = 8
        // full-duplex ring: statically its two egress direction queues
        // carry 4 and 3 of its batches, and the 4-hop opposite batch
        // floors the makespan at 4 hop times. Splitting that batch
        // across the two ring directions rebalances to ~3.5 hop times.
        let ic = Interconnect::build(TopologyKind::Ring, 8, pcie(), LinkSpec::nvlink());
        let mut owned = [10_000u64; 8];
        owned[0] = 800_000;
        let participates = [true; 8];
        let stat = ic.price_all_gather(&owned, &participates);
        let load = ic.price_all_gather_load_aware(&owned, &participates);
        assert!(
            load.makespan < stat.makespan,
            "load-aware {} !< static {}",
            load.makespan,
            stat.makespan
        );
        assert_eq!(load.payload_bytes, stat.payload_bytes, "payload is routing-invariant");
        assert_eq!(stat.rerouted_bytes, 0, "the static pass never re-routes");
        assert_eq!(stat.split_bytes, 0);
        assert!(
            load.rerouted_bytes > 0 || load.split_bytes > 0,
            "an improvement implies at least one move"
        );
        assert!(load.makespan >= load.critical_path - EPS);
    }

    #[test]
    fn load_aware_pass_is_a_no_op_when_the_static_routing_is_already_balanced() {
        // A perfectly symmetric clique admits no strictly-improving
        // move, so the load-aware report is bit-identical to the static
        // one.
        let ic = Interconnect::build(TopologyKind::AllToAll, 4, pcie(), LinkSpec::nvlink());
        let owned = [50_000u64; 4];
        let participates = [true; 4];
        let stat = ic.price_all_gather(&owned, &participates);
        let load = ic.price_all_gather_load_aware(&owned, &participates);
        assert_eq!(stat, load);
        assert_eq!(load.rerouted_bytes, 0);
        assert_eq!(load.split_bytes, 0);
    }

    #[test]
    fn load_aware_pass_moves_host_staged_traffic_onto_an_idle_fabric() {
        // A slow bridge statically sends its pair to the host; when the
        // host queue is the bottleneck the second pass may prefer the
        // (statically rejected) slow peer wire, which sits idle. Build
        // that situation directly: host staging two bulk batches vs a
        // slow-but-idle direct wire.
        let slow = LinkSpec::with_nominal_bw(8.0e9);
        let ic = Interconnect::mesh(2, pcie(), &[(0, 1, slow)])
            .with_route_breakpoints(&[ROUTE_PROBE_BYTES]);
        // At the probe size the direct 8 GB/s wire loses to 2 host
        // copies? explicit_bw ~12.3 GB/s, two copies => ~6.15 GB/s
        // effective; the 8 GB/s wire (derated to ~6.2) is close — pick a
        // spec slow enough to stage statically.
        let really_slow = LinkSpec::with_nominal_bw(4.0e9);
        let ic = ic.with_link_spec(0, 1, really_slow);
        assert_eq!(ic.route(0, 1, ROUTE_PROBE_BYTES), &Route::HostStaged);
        let owned = [4 << 20, 4 << 20];
        let participates = [true; 2];
        let stat = ic.price_all_gather(&owned, &participates);
        let load = ic.price_all_gather_load_aware(&owned, &participates);
        // Both directions share the one host queue statically (4 host
        // copies serialise); the full-duplex slow wire carries the two
        // directions concurrently, so re-routing at least one batch
        // strictly helps.
        assert!(load.makespan < stat.makespan);
        assert!(load.rerouted_bytes > 0);
        assert!(load.host_bytes < stat.host_bytes);
    }

    #[test]
    fn link_spec_scaling_shrinks_latency_only() {
        let s = LinkSpec::nvlink();
        let sc = s.scaled(10);
        assert_eq!(sc.bandwidth, s.bandwidth);
        assert_eq!(sc.duplex, s.duplex);
        assert!((sc.latency - s.latency / 1024.0).abs() < 1e-18);
        assert_eq!(s.transfer_time(0), 0.0);
        assert!(s.transfer_time(1 << 20) > s.latency);
    }

    #[test]
    fn hidden_under_is_bounded_by_makespan_and_window() {
        let ic = Interconnect::build(TopologyKind::Ring, 4, pcie(), LinkSpec::nvlink());
        let owned = [64u64 << 10; 4];
        let r = ic.price_all_gather(&owned, &[true; 4]);
        assert!(r.makespan > 0.0);
        // The makespan is the per-queue-busy maximum (floored by the
        // chain critical path) — the quantity any overlap window bites.
        let busiest = r.per_queue_busy.iter().cloned().fold(0.0f64, f64::max);
        assert!((r.makespan - busiest.max(r.critical_path)).abs() < EPS);
        // A window shorter than the makespan hides exactly the window...
        let w = r.makespan / 3.0;
        assert!((r.hidden_under(w) - w).abs() < EPS);
        assert!((r.exposed_after(w) - (r.makespan - w)).abs() < EPS);
        // ...a longer one hides everything but never more than exists...
        assert!((r.hidden_under(10.0 * r.makespan) - r.makespan).abs() < EPS);
        assert_eq!(r.exposed_after(10.0 * r.makespan), 0.0);
        // ...and a zero or negative window (no next analysis) hides none.
        assert_eq!(r.hidden_under(0.0), 0.0);
        assert_eq!(r.hidden_under(-1.0), 0.0);
        assert_eq!(ExchangeReport::default().hidden_under(1.0), 0.0);
    }
}
