//! Unified-memory model: 4 KB pages, fault costs, LRU residency.
//!
//! CUDA unified memory migrates data at page granularity on first touch.
//! The paper (Section II-C / III-B) highlights three properties we model:
//!
//! 1. **Fault overhead** — a page fault triggers TLB invalidation and page
//!    table updates; peak UM bandwidth only reaches **73.9 %** of explicit
//!    copy (the paper's measured ratio, citing EMOGI).
//! 2. **Page-granular redundancy** — touching one 4-byte neighbour faults a
//!    whole 4 KB page (Fig. 3(d)'s gap between active edges and active
//!    pages).
//! 3. **Residency and eviction** — pages stay cached until capacity forces
//!    LRU eviction; with `cudaMemAdviseSetReadMostly` evicted pages are
//!    dropped, not written back. Small graphs therefore transfer once and
//!    then run at device speed (the SK column of Table V).

use crate::pcie::PcieModel;
use crate::SimTime;
use std::collections::{BTreeMap, HashMap};

/// Unified-memory subsystem parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UmModel {
    /// Migration granularity (4 KB default CUDA page).
    pub page_bytes: u64,
    /// Sustained UM migration bandwidth, bytes/s (73.9 % of explicit copy).
    pub migrate_bw: f64,
    /// Fixed per-fault overhead (TLB shootdown + page-table update).
    pub fault_overhead: SimTime,
}

/// Measured UM/explicit bandwidth ratio from the paper.
pub const UM_BANDWIDTH_FRACTION: f64 = 0.739;

impl UmModel {
    /// Derive a UM model from the bus it migrates over.
    pub fn new(pcie: &PcieModel) -> Self {
        UmModel {
            page_bytes: 4096,
            migrate_bw: pcie.explicit_bw * UM_BANDWIDTH_FRACTION,
            // ~20 µs per fault group is the scale EMOGI reports for the
            // driver-side bookkeeping; the bandwidth derate above already
            // captures steady-state cost, so this only penalises sparse
            // touch patterns.
            fault_overhead: 2.0e-6,
        }
    }

    /// Page index holding byte `addr`.
    #[inline]
    pub fn page_of(&self, addr: u64) -> u64 {
        addr / self.page_bytes
    }

    /// Number of distinct pages overlapped by `[start, start+len)`.
    #[inline]
    pub fn pages_for_range(&self, start: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        self.page_of(start + len - 1) - self.page_of(start) + 1
    }

    /// Time to fault-in `pages` pages (transfer + bookkeeping).
    pub fn migrate_time(&self, pages: u64) -> SimTime {
        pages as f64 * (self.page_bytes as f64 / self.migrate_bw + self.fault_overhead)
    }
}

/// LRU set of device-resident pages under a byte budget.
///
/// `touch_range` is what an engine calls per neighbour run; it returns how
/// many pages faulted so the caller can charge [`UmModel::migrate_time`]
/// and count transferred bytes.
#[derive(Debug)]
pub struct UmCache {
    model: UmModel,
    capacity_pages: u64,
    /// page -> last-use tick
    resident: HashMap<u64, u64>,
    /// last-use tick -> page (ticks are unique), for O(log n) LRU pops
    lru: BTreeMap<u64, u64>,
    tick: u64,
    faults: u64,
    hits: u64,
}

impl UmCache {
    /// Empty cache over a device byte budget.
    pub fn new(model: UmModel, capacity_bytes: u64) -> Self {
        UmCache {
            model,
            capacity_pages: (capacity_bytes / model.page_bytes).max(1),
            resident: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            faults: 0,
            hits: 0,
        }
    }

    /// Touch every page overlapping `[start, start+len)`; returns the
    /// number of faults (pages that had to migrate).
    pub fn touch_range(&mut self, start: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = self.model.page_of(start);
        let last = self.model.page_of(start + len - 1);
        let mut faulted = 0;
        for p in first..=last {
            self.tick += 1;
            if let Some(old_tick) = self.resident.insert(p, self.tick) {
                self.hits += 1;
                self.lru.remove(&old_tick);
            } else {
                self.faults += 1;
                faulted += 1;
                if self.resident.len() as u64 > self.capacity_pages {
                    self.evict_lru();
                }
            }
            self.lru.insert(self.tick, p);
        }
        faulted
    }

    fn evict_lru(&mut self) {
        if let Some((&tick, &page)) = self.lru.iter().next() {
            self.lru.remove(&tick);
            self.resident.remove(&page);
        }
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Total faults since construction.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Total hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Bytes migrated so far (faults × page size).
    pub fn migrated_bytes(&self) -> u64 {
        self.faults * self.model.page_bytes
    }

    /// Drop all residency (e.g. between algorithm runs).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.lru.clear();
    }

    /// The model this cache charges against.
    pub fn model(&self) -> &UmModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> UmModel {
        UmModel::new(&PcieModel::pcie3())
    }

    #[test]
    fn bandwidth_is_739_of_explicit() {
        let p = PcieModel::pcie3();
        let m = UmModel::new(&p);
        assert!((m.migrate_bw / p.explicit_bw - UM_BANDWIDTH_FRACTION).abs() < 1e-12);
    }

    #[test]
    fn pages_for_range_counts_straddles() {
        let m = model();
        assert_eq!(m.pages_for_range(0, 1), 1);
        assert_eq!(m.pages_for_range(0, 4096), 1);
        assert_eq!(m.pages_for_range(0, 4097), 2);
        assert_eq!(m.pages_for_range(4095, 2), 2); // straddles a boundary
        assert_eq!(m.pages_for_range(123, 0), 0);
    }

    #[test]
    fn cache_hits_after_first_touch() {
        let mut c = UmCache::new(model(), 1 << 20);
        assert_eq!(c.touch_range(0, 8192), 2); // 2 pages fault
        assert_eq!(c.touch_range(0, 8192), 0); // now resident
        assert_eq!(c.faults(), 2);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.migrated_bytes(), 8192);
    }

    #[test]
    fn capacity_forces_lru_eviction() {
        // Capacity: 2 pages.
        let mut c = UmCache::new(model(), 8192);
        c.touch_range(0, 1); // page 0
        c.touch_range(4096, 1); // page 1
        c.touch_range(0, 1); // refresh page 0
        c.touch_range(8192, 1); // page 2 -> evicts page 1 (LRU)
        assert_eq!(c.resident_pages(), 2);
        assert_eq!(c.touch_range(0, 1), 0); // page 0 still resident
        assert_eq!(c.touch_range(4096, 1), 1); // page 1 was evicted
    }

    #[test]
    fn small_working_set_transfers_once() {
        // The SK-fits-in-memory effect: repeated sweeps over a working set
        // within capacity only pay for the first sweep.
        let mut c = UmCache::new(model(), 1 << 22); // 1024 pages
        let sweep = |c: &mut UmCache| {
            let mut f = 0;
            for i in 0..512u64 {
                f += c.touch_range(i * 4096, 4096);
            }
            f
        };
        assert_eq!(sweep(&mut c), 512);
        assert_eq!(sweep(&mut c), 0);
        assert_eq!(sweep(&mut c), 0);
    }

    #[test]
    fn oversubscribed_sweeps_thrash() {
        // Working set of 512 pages against 128-page capacity: every sweep
        // refaults everything (sequential sweep is LRU's worst case).
        let mut c = UmCache::new(model(), 128 * 4096);
        let sweep = |c: &mut UmCache| {
            let mut f = 0;
            for i in 0..512u64 {
                f += c.touch_range(i * 4096, 4096);
            }
            f
        };
        assert_eq!(sweep(&mut c), 512);
        assert_eq!(sweep(&mut c), 512);
    }

    #[test]
    fn migrate_time_scales_with_pages() {
        let m = model();
        assert!(m.migrate_time(10) > 9.0 * m.migrate_time(1));
        assert_eq!(m.migrate_time(0), 0.0);
    }
}
