//! Quickstart: run SSSP with HyTGraph on a synthetic power-law graph.
//!
//! ```text
//! cargo run --release --example quickstart              # host-only bus
//! cargo run --release --example quickstart -- ring      # NVLink ring
//! cargo run --release --example quickstart -- a2a       # full clique
//! ```
//!
//! Shows the three-step API: build a graph, wrap it in a configured
//! system, run a vertex program. The per-iteration report prints which
//! transfer engines the cost model picked as the frontier evolved — the
//! paper's core behaviour, visible in miniature. The optional argument
//! selects the inter-device topology; peer links drain the frontier
//! exchange off the shared PCIe root complex.

use hytgraph::core::TopologyKind;
use hytgraph::prelude::*;

fn main() {
    // Optional CLI arg: interconnect topology (host-only / ring / a2a).
    let topology = std::env::args()
        .nth(1)
        .map(|s| {
            TopologyKind::parse(&s)
                .unwrap_or_else(|| panic!("unknown topology '{s}' (host-only | ring | all-to-all)"))
        })
        .unwrap_or(TopologyKind::HostOnly);

    // 1. A weighted RMAT graph: 2^14 vertices, ~16 edges/vertex.
    let graph = GraphBuilder::rmat(14, 16.0).seed(42).weighted(true).build();
    println!(
        "graph: {} vertices, {} edges ({} KB of edge data)",
        graph.num_vertices(),
        graph.num_edges(),
        graph.edge_bytes() / 1024,
    );

    // 2. HyTGraph with the paper's defaults: hybrid engine selection
    //    (alpha = 0.8, beta = 0.4), task combining (k = 4), hub-sorted
    //    contribution-driven scheduling, 4 CUDA streams per device — here
    //    sharded across two simulated 2080Ti-class GPUs. Sharding changes
    //    only the timeline: values are bit-identical to `num_devices: 1`.
    let config = HyTGraphConfig { num_devices: 2, topology, ..HyTGraphConfig::default() };
    let mut system = HyTGraphSystem::new(graph, config);
    println!(
        "partitions: {} x {} KB across {} simulated GPUs ({} interconnect)",
        system.num_partitions(),
        system.config().partition_bytes / 1024,
        system.config().num_devices,
        system.config().topology.name(),
    );

    // 3. Single-source shortest paths from vertex 0.
    let result = system.run(Sssp::from_source(0));

    let reached = result.values.iter().filter(|&&d| d != u32::MAX).count();
    println!(
        "\nSSSP converged in {} iterations, {:.3} ms simulated GPU time",
        result.iterations,
        result.total_time * 1e3
    );
    println!("reached {reached} of {} vertices", result.values.len());
    println!(
        "transfer volume: {:.1} KB ({:.2}x the edge data)",
        result.counters.total_transfer_bytes() as f64 / 1024.0,
        result.counters.transfer_ratio(system.edge_bytes())
    );
    let (mut host_us, mut peer_us, mut fwd_kb) = (0.0, 0.0, 0.0);
    for it in &result.per_iteration {
        host_us += it.exchange.host_time * 1e6;
        peer_us += it.exchange.peer_time * 1e6;
        fwd_kb += it.exchange.forwarded_bytes as f64 / 1024.0;
    }
    println!(
        "frontier exchange: {:.1} KB payload | {host_us:.1} us on the host link, \
         {peer_us:.1} us on peer links ({fwd_kb:.1} KB relayed device-via-device)",
        result.counters.exchange_bytes as f64 / 1024.0,
    );

    println!("\nper-iteration engine mix (filter / compaction / zero-copy):");
    for it in &result.per_iteration {
        let (f, c, z, _) = it.mix.fractions();
        println!(
            "  iter {:>2}: {:>6} active vertices | {:>3.0}% E-F {:>3.0}% E-C {:>3.0}% I-ZC | {:>8.1} us",
            it.iteration,
            it.active_vertices,
            f * 100.0,
            c * 100.0,
            z * 100.0,
            it.time * 1e6
        );
    }

    // Cross-check against a trivial sequential Dijkstra.
    let graph2 = GraphBuilder::rmat(14, 16.0).seed(42).weighted(true).build();
    let oracle = hytgraph::algos::reference::dijkstra(&graph2, 0);
    assert_eq!(result.values, oracle, "HyTGraph result must match Dijkstra");
    println!("\nresult verified against sequential Dijkstra");
}
