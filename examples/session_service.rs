//! Resident session service: one partitioned system, many tenants.
//!
//! ```text
//! cargo run --release --example session_service
//! ```
//!
//! A long-running deployment does not rebuild partitions per query: it
//! keeps one [`HyTGraphSystem`] resident and admits a stream of point
//! queries against it. This example drives the full pipeline:
//!
//! 1. every request is priced with the paper's cost model (an all-active
//!    sweep of formulas (1)-(3)) before it is admitted, queued, or
//!    rejected with the quote attached;
//! 2. compatible in-flight traversals coalesce into one multi-source
//!    cohort (MS-BFS style, one lane per source), so the devices pay a
//!    single routed exchange for the whole batch;
//! 3. results demultiplex per request, with wait / cohort / exchange-share
//!    accounting on every answer.

use hytgraph::core::TopologyKind;
use hytgraph::graph::generators;
use hytgraph::prelude::*;

fn main() {
    // A skewed graph sharded over 8 simulated GPUs on a ring — the
    // setting where coalescing pays: hub-anchored frontiers overlap, so
    // one wide exchange record replaces several narrow ones.
    let graph = generators::power_law_preferential(1 << 12, 12.0, 2.2, 7, true);
    let mut config = SystemKind::HyTGraph.configure(HyTGraphConfig::default());
    config.num_devices = 8;
    config.topology = TopologyKind::Ring;
    config.threads = 1;
    let system = HyTGraphSystem::new(graph.clone(), config);

    // Hubs: where concurrent analytics queries actually land.
    let mut by_degree: Vec<(u64, u32)> =
        (0..graph.num_vertices()).map(|v| (graph.out_degree(v), v)).collect();
    by_degree.sort_unstable_by(|a, b| b.cmp(a));
    let hubs: Vec<u32> = by_degree.iter().take(4).map(|&(_, v)| v).collect();

    let mut service = SessionService::new(
        system,
        AlgoBackend,
        SessionConfig { max_batch: 4, admission_budget: 8.0, max_queue: 2 },
    );

    // A burst of tenants: four BFS point lookups, two SSSP refreshes on
    // the same hubs, a PageRank refresh, and one HyperBall snapshot.
    let stream = [
        QueryKind::Bfs(hubs[0]),
        QueryKind::Bfs(hubs[1]),
        QueryKind::Bfs(hubs[2]),
        QueryKind::Bfs(hubs[3]),
        QueryKind::Sssp(hubs[0]),
        QueryKind::Sssp(hubs[1]),
        QueryKind::PageRank,
        QueryKind::HyperBall,
    ];
    println!("admission (budget 8.0 sweep-RTTs, queue depth 2):");
    for kind in stream {
        match service.submit(kind.clone()) {
            Admission::Admitted { id, quote } => {
                println!("  #{:<2} {kind:?}: admitted at {:.2} RTTs", id.0, quote.sweep_rtt)
            }
            Admission::Queued { id, position, quote } => println!(
                "  #{:<2} {kind:?}: queued at slot {position} ({:.2} RTTs)",
                id.0, quote.sweep_rtt
            ),
            Admission::Rejected { reason, quote } => {
                println!("     {kind:?}: rejected ({reason:?}, quoted {:.2} RTTs)", quote.sweep_rtt)
            }
        }
        // Tenants trickle in 100us apart on the session clock.
        service.advance_clock(100.0e-6);
    }

    println!("\ncompleted (coalesced cohorts, per-request demux):");
    for q in service.drain() {
        let answer = match &q.output {
            QueryOutput::Distances(d) => {
                let reached = d.iter().filter(|&&x| x != u32::MAX).count();
                format!("{reached} vertices reached")
            }
            QueryOutput::Scores(s) => {
                let top = s
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(v, _)| v)
                    .unwrap();
                format!("top vertex {top}")
            }
            QueryOutput::Mutation(m) => {
                format!(
                    "{} ops applied, {} partitions dirtied",
                    m.applied,
                    m.dirty_partitions.len()
                )
            }
        };
        println!(
            "  #{:<2} {:?}: cohort {} (width {}), waited {:.0}us, \
             {:.1} KB exchange share, {answer}",
            q.id.0,
            q.kind,
            q.stats.batch,
            q.stats.batch_width,
            q.stats.wait * 1e6,
            q.stats.exchange_share_bytes / 1024.0,
        );
    }

    let s = service.stats();
    println!(
        "\nsession: {} queries in {} cohorts, clock {:.0}us",
        s.completed,
        s.batches,
        s.clock * 1e6
    );
}
