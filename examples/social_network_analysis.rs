//! Social-network analysis: influence ranking and community structure on
//! a Friendster-like graph.
//!
//! ```text
//! cargo run --release --example social_network_analysis
//! ```
//!
//! The workload the paper's introduction motivates: a social graph too
//! large for device memory, analysed with PageRank (influence) and
//! connected components (community islands). Because PageRank is
//! Δ-accumulative, HyTGraph schedules partitions by pending-Δ priority;
//! watch the engine mix move from ExpTM-filter (everything active) toward
//! zero-copy (sparse stragglers) as it converges.

use hytgraph::core::stats::IterationStats;
use hytgraph::graph::datasets::{self, DatasetId};
use hytgraph::prelude::*;

fn summarize(label: &str, iters: &[IterationStats]) {
    let total: f64 = iters.iter().map(|i| i.time).sum();
    println!("\n{label}: {} iterations, {:.2} ms simulated", iters.len(), total * 1e3);
    println!("  iter | active-vertices | engine mix (E-F/E-C/I-ZC)");
    let step = (iters.len() / 8).max(1);
    for it in iters.iter().step_by(step) {
        let (f, c, z, _) = it.mix.fractions();
        println!(
            "  {:>4} | {:>14} | {:>3.0}% / {:>3.0}% / {:>3.0}%",
            it.iteration,
            it.active_vertices,
            f * 100.0,
            c * 100.0,
            z * 100.0
        );
    }
}

fn main() {
    // The FK proxy: symmetrised power-law social network (see
    // hyt_graph::datasets for how it mirrors friendster-konect).
    let ds = datasets::load(DatasetId::Fk);
    println!(
        "friendster-konect proxy: {} vertices, {} edges, avg degree {:.1}",
        ds.graph.num_vertices(),
        ds.graph.num_edges(),
        ds.graph.num_edges() as f64 / ds.graph.num_vertices() as f64
    );

    // -- Influence ranking with Delta-PageRank. --
    let mut system = HyTGraphSystem::new(ds.graph.clone(), HyTGraphConfig::default());
    let pr = system.run(PageRank::new());
    let ranks = PageRank::ranks(&pr);
    summarize("PageRank", &pr.per_iteration);

    let mut top: Vec<(u32, f32)> = ranks.iter().enumerate().map(|(v, &r)| (v as u32, r)).collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("  top influencers (vertex, rank):");
    for (v, r) in top.iter().take(5) {
        println!("    v{v}: {r:.3} (degree {})", ds.graph.out_degree(*v));
    }

    // -- Community islands with connected components. --
    let mut system = HyTGraphSystem::new(ds.graph.clone(), HyTGraphConfig::default());
    let cc = system.run(Cc::new());
    summarize("Connected components", &cc.per_iteration);

    let mut sizes = std::collections::HashMap::new();
    for &label in &cc.values {
        *sizes.entry(label).or_insert(0u64) += 1;
    }
    let mut sizes: Vec<u64> = sizes.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "  {} components; giant component covers {:.1}% of vertices",
        sizes.len(),
        100.0 * sizes[0] as f64 / ds.graph.num_vertices() as f64
    );

    // -- Proximity to the top influencer with PHP. --
    let source = top[0].0;
    let mut system = HyTGraphSystem::new(ds.graph.clone(), HyTGraphConfig::default());
    let php = system.run(Php::from_source(source));
    let scores = Php::scores(&php);
    let close = scores.iter().filter(|&&s| s > 0.01).count();
    println!(
        "\nPHP from v{source}: {} vertices with hitting score > 0.01 ({} iterations)",
        close, php.iterations
    );
}
