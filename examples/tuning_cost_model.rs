//! Tuning the hybrid cost model: sweep α, β, partition size and the
//! task-combining width k, and watch the effect on runtime and engine mix.
//!
//! ```text
//! cargo run --release --example tuning_cost_model
//! ```
//!
//! The paper fixes α = 0.8, β = 0.4, 32 MB partitions, k = 4; this example
//! shows those are sensible defaults on a workload, and demonstrates how a
//! downstream user would re-tune them for different hardware.

use hytgraph::core::{SelectParams, SystemKind};
use hytgraph::graph::datasets::{self, DatasetId};
use hytgraph::prelude::*;

fn run_sssp(graph: &hytgraph::graph::Csr, cfg: HyTGraphConfig) -> (f64, f64) {
    let src = (0..graph.num_vertices()).max_by_key(|&v| graph.out_degree(v)).unwrap();
    let mut sys = HyTGraphSystem::new(graph.clone(), cfg);
    let r = sys.run(Sssp::from_source(src));
    (r.total_time * 1e3, r.counters.transfer_ratio(sys.num_edges() * 8))
}

fn main() {
    let ds = datasets::load(DatasetId::Tw);
    let graph = &ds.graph;
    println!("twitter proxy: {} vertices, {} edges\n", graph.num_vertices(), graph.num_edges());
    let base = || SystemKind::HyTGraph.configure(HyTGraphConfig::default());

    println!("alpha sweep (compaction-vs-filter threshold; paper: 0.8)");
    for alpha in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut cfg = base();
        cfg.select_params = SelectParams { alpha, ..cfg.select_params };
        let (t, x) = run_sssp(graph, cfg);
        println!("  alpha={alpha:<4}  SSSP {t:>7.2} ms  transfer {x:.2}X");
    }

    println!("\nbeta sweep (compaction-vs-zero-copy threshold; paper: 0.4)");
    for beta in [0.1, 0.2, 0.4, 0.8, 1.6] {
        let mut cfg = base();
        cfg.select_params = SelectParams { beta, ..cfg.select_params };
        let (t, x) = run_sssp(graph, cfg);
        println!("  beta={beta:<4}   SSSP {t:>7.2} ms  transfer {x:.2}X");
    }

    println!("\npartition-size sweep (paper: 32 MB, scaled here to 32 KB)");
    for kb in [4u64, 16, 32, 128, 512] {
        let mut cfg = base();
        cfg.partition_bytes = kb << 10;
        let (t, x) = run_sssp(graph, cfg);
        println!("  {kb:>4} KB     SSSP {t:>7.2} ms  transfer {x:.2}X");
    }

    println!("\ntask-combining width k (paper: 4)");
    for k in [1usize, 2, 4, 8, 16] {
        let mut cfg = base();
        cfg.combine_k = k;
        let (t, x) = run_sssp(graph, cfg);
        println!("  k={k:<2}        SSSP {t:>7.2} ms  transfer {x:.2}X");
    }

    println!("\nhub fraction for contribution-driven scheduling (paper: 8%)");
    for frac in [0.0, 0.02, 0.08, 0.2] {
        let mut cfg = base();
        cfg.hub_fraction = frac;
        let (t, x) = run_sssp(graph, cfg);
        println!("  {:>4.0}%      SSSP {t:>7.2} ms  transfer {x:.2}X", frac * 100.0);
    }
}
