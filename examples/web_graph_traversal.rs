//! Web-graph traversal: BFS and weighted shortest paths on a crawl-shaped
//! graph, comparing HyTGraph against the single-engine baselines.
//!
//! ```text
//! cargo run --release --example web_graph_traversal
//! ```
//!
//! Traversals are where transfer management matters most: the frontier
//! swells from one vertex to most of the graph and back, so the best
//! engine changes every few iterations — exactly the regime where a fixed
//! choice (always-filter, always-compact, always-zero-copy) loses.

use hytgraph::core::SystemKind;
use hytgraph::graph::datasets::{self, DatasetId};
use hytgraph::prelude::*;

fn main() {
    // The uk-2007 proxy: high-locality web crawl shape.
    let ds = datasets::load(DatasetId::Uk);
    let graph = &ds.graph;
    println!(
        "uk-2007 proxy: {} vertices, {} edges (web-like: {})",
        graph.num_vertices(),
        graph.num_edges(),
        ds.web_like
    );

    // A well-connected crawl seed.
    let source = (0..graph.num_vertices()).max_by_key(|&v| graph.out_degree(v)).unwrap();
    println!("source: v{source} (degree {})\n", graph.out_degree(source));

    let systems = [
        SystemKind::ExpFilter,
        SystemKind::ImpUnified,
        SystemKind::Grus,
        SystemKind::Subway,
        SystemKind::Emogi,
        SystemKind::HyTGraph,
    ];

    println!(
        "{:<10} {:>12} {:>8} {:>14} {:>12}",
        "system", "BFS time", "iters", "SSSP time", "transfer"
    );
    let mut bfs_oracle: Option<Vec<u32>> = None;
    for kind in systems {
        let cfg = kind.configure(HyTGraphConfig::default());
        let mut sys = HyTGraphSystem::new(graph.clone(), cfg.clone());
        let bfs = sys.run(Bfs::from_source(source));
        // Every system must agree on reachability.
        match &bfs_oracle {
            None => bfs_oracle = Some(bfs.values.clone()),
            Some(want) => assert_eq!(&bfs.values, want, "{} diverged", kind.name()),
        }
        let mut sys = HyTGraphSystem::new(graph.clone(), cfg);
        let sssp = sys.run(Sssp::from_source(source));
        println!(
            "{:<10} {:>10.2}ms {:>8} {:>12.2}ms {:>11.2}X",
            kind.name(),
            bfs.total_time * 1e3,
            bfs.iterations,
            sssp.total_time * 1e3,
            sssp.counters.transfer_ratio(sys.num_edges() * 8),
        );
    }

    let depths = bfs_oracle.unwrap();
    let reached = depths.iter().filter(|&&d| d != u32::MAX).count();
    let max_depth = depths.iter().filter(|&&d| d != u32::MAX).max().unwrap();
    println!(
        "\nBFS reaches {:.1}% of the crawl, depth {}",
        100.0 * reached as f64 / depths.len() as f64,
        max_depth
    );
}
