#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # HyTGraph-RS
//!
//! A from-scratch Rust reproduction of **HyTGraph: GPU-Accelerated Graph
//! Processing with Hybrid Transfer Management** (Wang, Ai, Zhang, Chen, Yu —
//! ICDE 2023, arXiv:2208.14935).
//!
//! Processing a graph that exceeds GPU device memory forces edge data across
//! the host–GPU bus every iteration, and the bus (PCIe) is ~50× slower than
//! GPU memory. Existing frameworks pick one transfer-management strategy:
//!
//! * **ExpTM-filter** — ship whole partitions that contain any active edge
//!   via explicit copy (`cudaMemcpy`); fast bulk bandwidth, lots of
//!   redundant bytes.
//! * **ExpTM-compaction** (Subway) — CPU gathers only active edges into a
//!   fresh compact array first; minimal bytes, heavy CPU cost.
//! * **ImpTM-unified-memory** — page-granular on-demand migration; great
//!   when the graph fits, page-fault-bound when it does not.
//! * **ImpTM-zero-copy** (EMOGI) — cacheline-granular on-demand access over
//!   PCIe TLPs; great for sparse high-degree frontiers, wastes bus capacity
//!   on unsaturated requests otherwise.
//!
//! HyTGraph's contribution is a **hybrid**: per partition, per iteration, it
//! evaluates closed-form transfer-cost formulas for the candidate engines and
//! schedules each partition with the cheapest one, then combines tasks and
//! orders them by expected contribution to convergence.
//!
//! This crate is a facade that re-exports the workspace:
//!
//! * [`graph`] — CSR storage, generators, partitioning, hub sorting,
//!   frontiers ([`hyt_graph`]).
//! * [`sim`] — the transaction-level PCIe/GPU/unified-memory simulator that
//!   substitutes for real hardware ([`hyt_sim`]).
//! * [`engines`] — the four transfer engines ([`hyt_engines`]).
//! * [`core`] — cost model, engine selection, task combining, asynchronous
//!   contribution-driven scheduling, and whole-system configurations
//!   ([`hyt_core`]).
//! * [`algos`] — SSSP, BFS, CC, PageRank, PHP and HyperBall vertex
//!   programs plus sequential oracles, MS-BFS-style multi-source batches,
//!   and the session-service backend ([`hyt_algos`]).
//!
//! For serving many point queries against one resident graph — priced
//! admission control and automatic query coalescing — see
//! [`core::session`] and `examples/session_service.rs`.
//!
//! ## Quickstart
//!
//! ```
//! use hytgraph::prelude::*;
//!
//! // A small social-network-like graph, weighted, seeded (deterministic).
//! let graph = GraphBuilder::rmat(12, 16.0).seed(42).weighted(true).build();
//! let mut system = HyTGraphSystem::new(graph, HyTGraphConfig::default());
//! let result = system.run(Sssp::from_source(0));
//! assert_eq!(result.values.len(), system.num_vertices() as usize);
//! ```
//!
//! See `examples/` for domain scenarios and `crates/bench` for the
//! experiment harness that regenerates every table and figure in the paper.

pub use hyt_algos as algos;
pub use hyt_core as core;
pub use hyt_engines as engines;
pub use hyt_graph as graph;
pub use hyt_sim as sim;

/// Convenience re-exports covering the common public API surface.
pub mod prelude {
    pub use hyt_algos::{
        lane_values, run_hyperball, AlgoBackend, Bfs, Cc, HyperBall, MultiBfs, MultiSssp, PageRank,
        Php, Sssp,
    };
    pub use hyt_core::{
        Admission, AsyncMode, EngineKind, HyTGraphConfig, HyTGraphSystem, OverlapWindow, QueryKind,
        QueryOutput, RunResult, SessionConfig, SessionService, SystemKind,
    };
    pub use hyt_graph::{Csr, GraphBuilder, VertexId};
    pub use hyt_sim::GpuModel;
}
