//! Failure-injection and degenerate-input tests: the system must behave
//! sensibly at the boundaries (empty graphs, single partitions, zero
//! device budget, extreme configuration values).

use hytgraph::core::{AsyncMode, HyTGraphConfig, HyTGraphSystem, Selection, SystemKind};
use hytgraph::graph::{generators, CsrBuilder, EdgeList};
use hytgraph::prelude::*;

#[test]
fn single_vertex_graph() {
    let g = CsrBuilder::new(1, true).build();
    let mut sys = HyTGraphSystem::new(g, HyTGraphConfig::default());
    let r = sys.run(Sssp::from_source(0));
    assert_eq!(r.values, vec![0]);
    assert_eq!(r.iterations, 1);
}

#[test]
fn edgeless_graph_converges_immediately() {
    let g = CsrBuilder::new(64, false).build();
    let mut sys = HyTGraphSystem::new(g, HyTGraphConfig::default());
    let r = sys.run(Bfs::from_source(7));
    assert_eq!(r.values[7], 0);
    assert_eq!(r.values.iter().filter(|&&d| d == u32::MAX).count(), 63);
}

#[test]
fn self_loops_and_duplicate_edges_are_harmless() {
    let mut el = EdgeList::new(4);
    el.push_weighted(0, 0, 5); // self loop
    el.push_weighted(0, 1, 3);
    el.push_weighted(0, 1, 7); // duplicate with worse weight
    el.push_weighted(1, 2, 2);
    el.push_weighted(2, 2, 1);
    let g = el.to_csr();
    let mut sys = HyTGraphSystem::new(g, HyTGraphConfig::default());
    let r = sys.run(Sssp::from_source(0));
    assert_eq!(r.values, vec![0, 3, 5, u32::MAX]);
}

#[test]
fn saturating_weights_do_not_overflow() {
    let mut el = EdgeList::new(3);
    el.push_weighted(0, 1, u32::MAX);
    el.push_weighted(1, 2, u32::MAX);
    let g = el.to_csr();
    let mut sys = HyTGraphSystem::new(g, HyTGraphConfig::default());
    let r = sys.run(Sssp::from_source(0));
    assert_eq!(r.values[1], u32::MAX - 1 + 1); // saturated add clamps
    assert_eq!(r.values[2], u32::MAX); // still "unreached" sentinel
}

#[test]
fn one_partition_configuration() {
    let g = generators::rmat(9, 8.0, 4, true);
    let cfg = HyTGraphConfig { partition_bytes: u64::MAX / 4, ..HyTGraphConfig::default() };
    let mut sys = HyTGraphSystem::new(g.clone(), cfg);
    assert_eq!(sys.num_partitions(), 1);
    let oracle = hytgraph::algos::reference::dijkstra(&g, 0);
    assert_eq!(sys.run(Sssp::from_source(0)).values, oracle);
}

#[test]
fn tiny_partitions_configuration() {
    let g = generators::rmat(8, 6.0, 3, true);
    let cfg = HyTGraphConfig { partition_bytes: 64, ..HyTGraphConfig::default() };
    let mut sys = HyTGraphSystem::new(g.clone(), cfg);
    assert!(sys.num_partitions() > 100);
    let oracle = hytgraph::algos::reference::dijkstra(&g, 0);
    assert_eq!(sys.run(Sssp::from_source(0)).values, oracle);
}

#[test]
fn zero_streams_clamps_to_one() {
    let g = generators::rmat(8, 4.0, 1, true);
    let cfg = HyTGraphConfig { num_streams: 0, ..HyTGraphConfig::default() };
    let mut sys = HyTGraphSystem::new(g.clone(), cfg);
    let oracle = hytgraph::algos::reference::dijkstra(&g, 0);
    assert_eq!(sys.run(Sssp::from_source(0)).values, oracle);
}

#[test]
fn zero_device_budget_forces_thrash_but_stays_correct() {
    let g = generators::rmat(9, 6.0, 7, true);
    let mut cfg = SystemKind::ImpUnified.configure(HyTGraphConfig::default());
    cfg.machine.edge_budget = 0;
    let mut sys = HyTGraphSystem::new(g.clone(), cfg);
    let oracle = hytgraph::algos::reference::dijkstra(&g, 0);
    let r = sys.run(Sssp::from_source(0));
    assert_eq!(r.values, oracle);
    assert!(r.counters.page_faults > 0);
}

#[test]
fn single_thread_configuration_matches_parallel() {
    let g = generators::rmat(10, 8.0, 13, true);
    let run = |threads| {
        let cfg = HyTGraphConfig { threads, ..HyTGraphConfig::default() };
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        sys.run(Sssp::from_source(0)).values
    };
    assert_eq!(run(1), run(8));
}

#[test]
fn extreme_combine_widths() {
    let g = generators::rmat(9, 8.0, 21, true);
    let oracle = hytgraph::algos::reference::dijkstra(&g, 0);
    for k in [1usize, 1000] {
        let cfg = HyTGraphConfig { combine_k: k, ..HyTGraphConfig::default() };
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        assert_eq!(sys.run(Sssp::from_source(0)).values, oracle, "k = {k}");
    }
}

#[test]
fn extreme_selection_thresholds() {
    let g = generators::rmat(9, 8.0, 22, true);
    let oracle = hytgraph::algos::reference::dijkstra(&g, 0);
    for (alpha, beta) in [(0.0, 0.0), (10.0, 10.0)] {
        let cfg = HyTGraphConfig {
            select_params: hytgraph::core::SelectParams { alpha, beta, ..Default::default() },
            ..HyTGraphConfig::default()
        };
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        assert_eq!(sys.run(Sssp::from_source(0)).values, oracle, "α={alpha} β={beta}");
    }
}

#[test]
fn hub_fraction_extremes() {
    let g = generators::rmat(9, 8.0, 23, true);
    let oracle = hytgraph::algos::reference::dijkstra(&g, 5);
    for frac in [0.0, 1.0] {
        let cfg = HyTGraphConfig { hub_fraction: frac, ..HyTGraphConfig::default() };
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        assert_eq!(sys.run(Sssp::from_source(5)).values, oracle, "fraction {frac}");
    }
}

#[test]
fn max_iterations_caps_runaway_runs() {
    let g = generators::rmat(9, 8.0, 2, false);
    let cfg = HyTGraphConfig { max_iterations: 2, ..HyTGraphConfig::default() };
    let mut sys = HyTGraphSystem::new(g, cfg);
    let r = sys.run(PageRank::new());
    assert!(r.iterations <= 2);
}

#[test]
fn grus_with_zero_budget_degrades_to_zero_copy() {
    let g = generators::rmat(9, 6.0, 9, true);
    let mut cfg = SystemKind::Grus.configure(HyTGraphConfig::default());
    cfg.machine.edge_budget = 0;
    let mut sys = HyTGraphSystem::new(g.clone(), cfg);
    let r = sys.run(Sssp::from_source(0));
    assert_eq!(r.counters.um_bytes, 0, "nothing should migrate");
    assert!(r.counters.zero_copy_bytes > 0);
    assert_eq!(r.values, hytgraph::algos::reference::dijkstra(&g, 0));
}

#[test]
fn disconnected_components_with_all_selections() {
    // Two islands; the far island must stay unreached for every policy.
    let mut el = EdgeList::new(100);
    for v in 0..49u32 {
        el.push_weighted(v, v + 1, 1);
    }
    for v in 50..99u32 {
        el.push_weighted(v, v + 1, 1);
    }
    let g = el.to_csr();
    for sel in [
        Selection::Hybrid,
        Selection::FilterOnly,
        Selection::CompactionOnly,
        Selection::ZeroCopyOnly,
        Selection::UnifiedOnly,
        Selection::GrusLike,
        Selection::CpuOnly,
    ] {
        let cfg = HyTGraphConfig {
            selection: sel,
            async_mode: if sel == Selection::CpuOnly {
                AsyncMode::Sync
            } else {
                HyTGraphConfig::default().async_mode
            },
            ..HyTGraphConfig::default()
        };
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        let r = sys.run(Bfs::from_source(0));
        assert_eq!(r.values[49], 49, "{sel:?}");
        assert_eq!(r.values[50], u32::MAX, "{sel:?}");
    }
}
