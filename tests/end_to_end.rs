//! Cross-crate integration tests: every system preset, every algorithm,
//! checked against sequential oracles on graphs large enough to exercise
//! partitioning, engine switching, task combining and hub sorting together.

use hytgraph::algos::{reference, AlgoKind};
use hytgraph::core::{AsyncMode, HyTGraphConfig, HyTGraphSystem, Selection, SystemKind};
use hytgraph::graph::datasets::{self, DatasetId};
use hytgraph::graph::generators;
use hytgraph::prelude::*;

/// A mid-sized skewed weighted graph that spans many partitions.
fn test_graph() -> hytgraph::graph::Csr {
    generators::rmat(12, 12.0, 99, true)
}

#[test]
fn sssp_all_systems_match_dijkstra_on_large_graph() {
    let g = test_graph();
    let oracle = reference::dijkstra(&g, 0);
    for kind in SystemKind::TABLE5 {
        let mut sys = HyTGraphSystem::new(g.clone(), kind.configure(HyTGraphConfig::default()));
        assert!(sys.num_partitions() > 10, "want many partitions, got {}", sys.num_partitions());
        let r = sys.run(Sssp::from_source(0));
        assert_eq!(r.values, oracle, "{} diverged from Dijkstra", kind.name());
    }
}

#[test]
fn pagerank_all_systems_match_power_iteration_on_large_graph() {
    let g = test_graph();
    let oracle = reference::pagerank(&g, 0.85, 300);
    for kind in SystemKind::TABLE5 {
        let mut sys = HyTGraphSystem::new(g.clone(), kind.configure(HyTGraphConfig::default()));
        let r = sys.run(PageRank::new());
        let ranks = PageRank::ranks(&r);
        let err = ranks
            .iter()
            .zip(&oracle)
            .map(|(&a, &b)| (a as f64 - b).abs() / b.max(1e-9))
            .fold(0.0, f64::max);
        assert!(err < 2e-2, "{}: relative error {err}", kind.name());
    }
}

#[test]
fn dataset_proxies_run_end_to_end() {
    // The real experiment path: proxy dataset -> hub sort -> hybrid run.
    let ds = datasets::load(DatasetId::Sk);
    let src = (0..ds.graph.num_vertices()).max_by_key(|&v| ds.graph.out_degree(v)).unwrap();
    let oracle = reference::dijkstra(&ds.graph, src);
    let mut sys = HyTGraphSystem::new(ds.graph.clone(), HyTGraphConfig::default());
    let r = sys.run(Sssp::from_source(src));
    assert_eq!(r.values, oracle);
    assert!(r.iterations > 1);
    assert!(r.total_time > 0.0);
    assert!(r.counters.total_transfer_bytes() > 0);
}

#[test]
fn repeated_runs_are_deterministic_for_monotone_algorithms() {
    let g = generators::rmat(11, 8.0, 5, true);
    let run = || {
        let mut sys = HyTGraphSystem::new(g.clone(), HyTGraphConfig::default());
        let r = sys.run(Bfs::from_source(3));
        (r.values, r.iterations, r.counters)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "transfer counters must be reproducible");
}

#[test]
fn hybrid_switches_engines_across_a_traversal() {
    // The core paper claim: during one traversal the preferred engine
    // changes. Assert the run actually used more than one engine.
    let ds = datasets::load(DatasetId::Fk);
    let src = (0..ds.graph.num_vertices()).max_by_key(|&v| ds.graph.out_degree(v)).unwrap();
    let mut sys = HyTGraphSystem::new(ds.graph.clone(), HyTGraphConfig::default());
    let r = sys.run(Sssp::from_source(src));
    let mut used_filter = 0u32;
    let mut used_zc = 0u32;
    let mut used_ec = 0u32;
    for it in &r.per_iteration {
        used_filter += it.mix.filter;
        used_zc += it.mix.zero_copy;
        used_ec += it.mix.compaction;
    }
    assert!(used_zc > 0, "zero-copy never chosen");
    assert!(used_filter + used_ec > 0, "explicit transfer never chosen");
}

#[test]
fn hybrid_total_time_at_most_best_single_engine_with_slack() {
    // HyTGraph should not be much worse than the best pure engine (it pays
    // selection overhead but picks per-partition winners).
    let ds = datasets::load(DatasetId::Tw);
    let src = (0..ds.graph.num_vertices()).max_by_key(|&v| ds.graph.out_degree(v)).unwrap();
    let time_of = |kind: SystemKind| {
        let mut sys =
            HyTGraphSystem::new(ds.graph.clone(), kind.configure(HyTGraphConfig::default()));
        sys.run(Sssp::from_source(src)).total_time
    };
    let hyt = time_of(SystemKind::HyTGraph);
    let best_pure = [SystemKind::ExpFilter, SystemKind::Subway, SystemKind::Emogi]
        .into_iter()
        .map(time_of)
        .fold(f64::INFINITY, f64::min);
    assert!(
        hyt <= best_pure * 1.5,
        "HyTGraph {hyt:.6}s should be within 1.5x of best pure engine {best_pure:.6}s"
    );
}

#[test]
fn sync_and_async_agree_on_final_values() {
    let g = generators::rmat(11, 8.0, 17, true);
    let oracle = reference::dijkstra(&g, 0);
    for mode in
        [AsyncMode::Sync, AsyncMode::Async { recompute: 0 }, AsyncMode::Async { recompute: 3 }]
    {
        let cfg = HyTGraphConfig { async_mode: mode, ..HyTGraphConfig::default() };
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        let r = sys.run(Sssp::from_source(0));
        assert_eq!(r.values, oracle, "mode {mode:?}");
    }
}

#[test]
fn async_recompute_reduces_iterations() {
    let g = generators::power_law_local(20_000, 10.0, 1.5, 0.9, 60, 8, true);
    let iters_at = |recompute: u32| {
        let cfg = HyTGraphConfig {
            async_mode: AsyncMode::Async { recompute },
            ..HyTGraphConfig::default()
        };
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        sys.run(Sssp::from_source(0)).iterations
    };
    let sync_like = iters_at(0);
    let squeezed = iters_at(4);
    assert!(
        squeezed <= sync_like,
        "recompute must not increase iterations: {squeezed} vs {sync_like}"
    );
}

#[test]
fn cpu_system_transfers_nothing() {
    let g = generators::rmat(10, 8.0, 2, true);
    let cfg = SystemKind::CpuGalois.configure(HyTGraphConfig::default());
    let mut sys = HyTGraphSystem::new(g, cfg);
    let r = sys.run(Cc::new());
    assert_eq!(r.counters.total_transfer_bytes(), 0);
    assert!(r.total_time > 0.0);
}

#[test]
fn every_algorithm_runs_on_every_dataset_proxy() {
    // Smoke coverage of the full experiment grid on the smallest proxy.
    let ds = datasets::load(DatasetId::Sk);
    let src = (0..ds.graph.num_vertices()).max_by_key(|&v| ds.graph.out_degree(v)).unwrap();
    for algo in [
        AlgoKind::PageRank,
        AlgoKind::Sssp,
        AlgoKind::Cc,
        AlgoKind::Bfs,
        AlgoKind::Php,
        AlgoKind::HyperBall,
    ] {
        let mut sys = HyTGraphSystem::new(ds.graph.clone(), HyTGraphConfig::default());
        let (iters, time) = match algo {
            AlgoKind::PageRank => {
                let r = sys.run(PageRank::new());
                (r.iterations, r.total_time)
            }
            AlgoKind::Sssp => {
                let r = sys.run(Sssp::from_source(src));
                (r.iterations, r.total_time)
            }
            AlgoKind::Cc => {
                let r = sys.run(Cc::new());
                (r.iterations, r.total_time)
            }
            AlgoKind::Bfs => {
                let r = sys.run(Bfs::from_source(src));
                (r.iterations, r.total_time)
            }
            AlgoKind::Php => {
                let r = sys.run(Php::from_source(src));
                (r.iterations, r.total_time)
            }
            AlgoKind::HyperBall => {
                let r = hytgraph::algos::hyperball::run_hyperball(
                    ds.graph.clone(),
                    HyTGraphConfig::default(),
                );
                (r.run.iterations, r.run.total_time)
            }
        };
        assert!(iters > 0 && time > 0.0, "{:?} did no work", algo);
    }
}

#[test]
fn selection_policies_differ_in_transfer_profile() {
    // Filter moves the most bytes; compaction the least explicit bytes of
    // the explicit engines; zero-copy moves only cacheline-padded reads.
    let g = generators::rmat(12, 12.0, 31, true);
    let run = |sel: Selection| {
        let cfg = HyTGraphConfig {
            selection: sel,
            async_mode: AsyncMode::Sync,
            contribution_scheduling: false,
            ..HyTGraphConfig::default()
        };
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        sys.run(Sssp::from_source(0)).counters
    };
    let filter = run(Selection::FilterOnly);
    let compaction = run(Selection::CompactionOnly);
    let zc = run(Selection::ZeroCopyOnly);
    assert!(filter.explicit_bytes > compaction.explicit_bytes);
    assert_eq!(filter.zero_copy_bytes, 0);
    assert_eq!(zc.explicit_bytes, 0);
    assert!(zc.zero_copy_bytes > 0);
    assert!(compaction.compaction_bytes > 0);
    assert_eq!(filter.compaction_bytes, 0);
}
