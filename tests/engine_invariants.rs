//! Property tests on the engine/cost layer: every plan's counters and
//! times must be mutually consistent and must agree with the closed-form
//! TLP formulas, on random graphs and random frontiers.

use hytgraph::core::{cost, partition_costs};
use hytgraph::engines::{analyze_partitions, compaction, filter, zero_copy, UnifiedState};
use hytgraph::graph::{generators, Csr, EdgeList, Frontier, PartitionSet};
use hytgraph::sim::{MachineModel, UmCache, UmModel};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Csr> {
    (16u32..200, 0usize..2000, any::<u64>()).prop_map(|(nv, ne, seed)| {
        // Seeded RMAT-ish edges through the deterministic generator plus
        // extra random edges for irregularity.
        let mut el = EdgeList::new(nv);
        let base = generators::erdos_renyi(nv, ne as u64, seed, true);
        for v in 0..nv {
            for (d, w) in base.edges_of(v) {
                el.push_weighted(v, d, w);
            }
        }
        el.to_csr()
    })
}

fn arb_frontier(nv: u32, density: u8) -> Frontier {
    let f = Frontier::new(nv);
    let step = (density as u32 % 7) + 1;
    for v in (0..nv).step_by(step as usize) {
        f.insert(v);
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn activity_totals_match_frontier(g in arb_graph(), density in 0u8..7) {
        let machine = MachineModel::paper_platform();
        let parts = PartitionSet::build(&g, 1024);
        let f = arb_frontier(g.num_vertices(), density);
        let acts = analyze_partitions(g.view(), &parts, &f, &machine.pcie, g.bytes_per_edge(), 4);
        let total_active: u64 = acts.iter().map(|a| a.active_vertices.len() as u64).sum();
        prop_assert_eq!(total_active, f.count());
        let total_edges: u64 = acts.iter().map(|a| a.total_edges).sum();
        prop_assert_eq!(total_edges, g.num_edges());
        // Requests are bounded below by the saturated payload and above by
        // two extra requests per active vertex (per-vertex ceiling plus a
        // possible straddle line).
        for a in &acts {
            let payload = a.active_edges * g.bytes_per_edge();
            let min_req = payload.div_ceil(machine.pcie.request_bytes);
            prop_assert!(a.zc_requests >= min_req);
            prop_assert!(a.zc_requests <= min_req + 2 * a.active_vertices.len() as u64);
        }
    }

    #[test]
    fn filter_plan_matches_formula_one(g in arb_graph(), density in 0u8..7) {
        let machine = MachineModel::paper_platform();
        let parts = PartitionSet::build(&g, 1024);
        let f = arb_frontier(g.num_vertices(), density);
        let bpe = g.bytes_per_edge();
        let acts = analyze_partitions(g.view(), &parts, &f, &machine.pcie, bpe, 2);
        for a in acts.iter().filter(|a| a.is_active()) {
            let plan = filter::plan_filter(&machine, g.view(), &[a], bpe);
            // Counters: the whole partition ships, regardless of activity.
            prop_assert_eq!(plan.counters.explicit_bytes, a.total_edges * bpe);
            // Time: latency + ceil-TLPs x RTT.
            let tlps = (a.total_edges * bpe).div_ceil(machine.pcie.tlp_payload());
            let want = if a.total_edges == 0 {
                0.0
            } else {
                machine.pcie.copy_latency + tlps as f64 * machine.pcie.rtt()
            };
            prop_assert!((plan.transfer_time - want).abs() < 1e-12);
        }
    }

    #[test]
    fn compaction_plan_is_exact_and_minimal(g in arb_graph(), density in 0u8..7) {
        let machine = MachineModel::paper_platform();
        let parts = PartitionSet::build(&g, 1024);
        let f = arb_frontier(g.num_vertices(), density);
        let bpe = g.bytes_per_edge();
        let acts = analyze_partitions(g.view(), &parts, &f, &machine.pcie, bpe, 2);
        let refs: Vec<_> = acts.iter().filter(|a| a.is_active()).collect();
        if refs.is_empty() {
            return Ok(());
        }
        let plan = compaction::plan_compaction(&machine, g.view(), &refs, bpe, 4);
        let c = plan.compacted.as_ref().unwrap();
        // The gather holds exactly the active edges.
        let want_edges: u64 = refs.iter().map(|a| a.active_edges).sum();
        prop_assert_eq!(c.num_edges(), want_edges);
        // Formula (2) numerator: active edges x d1 + |A| x d2.
        let want_bytes = want_edges * bpe + plan.active_vertices.len() as u64 * 8;
        prop_assert_eq!(plan.counters.explicit_bytes, want_bytes);
        // Compaction never ships more than filter would.
        let filter_bytes: u64 = refs.iter().map(|a| a.total_edges * bpe).sum();
        prop_assert!(want_bytes <= filter_bytes + plan.active_vertices.len() as u64 * 8);
    }

    #[test]
    fn zero_copy_plan_pools_tlps(g in arb_graph(), density in 0u8..7) {
        let machine = MachineModel::paper_platform();
        let parts = PartitionSet::build(&g, 1024);
        let f = arb_frontier(g.num_vertices(), density);
        let bpe = g.bytes_per_edge();
        let acts = analyze_partitions(g.view(), &parts, &f, &machine.pcie, bpe, 2);
        let refs: Vec<_> = acts.iter().filter(|a| a.is_active()).collect();
        let plan = zero_copy::plan_zero_copy(&machine, &refs);
        let requests: u64 = refs.iter().map(|a| a.zc_requests).sum();
        prop_assert_eq!(plan.counters.zero_copy_bytes, requests * machine.pcie.request_bytes);
        prop_assert_eq!(plan.counters.tlps, requests.div_ceil(machine.pcie.max_requests));
        // Zero-copy payload is never below the active edge data it reads.
        let active_bytes: u64 = refs.iter().map(|a| a.active_edges * bpe).sum();
        prop_assert!(plan.counters.zero_copy_bytes >= active_bytes);
    }

    #[test]
    fn unified_faults_are_bounded_by_page_spans(g in arb_graph(), density in 0u8..7) {
        let machine = MachineModel::paper_platform();
        let parts = PartitionSet::build(&g, 1024);
        let f = arb_frontier(g.num_vertices(), density);
        let bpe = g.bytes_per_edge();
        let acts = analyze_partitions(g.view(), &parts, &f, &machine.pcie, bpe, 2);
        let refs: Vec<_> = acts.iter().filter(|a| a.is_active()).collect();
        let mut state = UnifiedState::new(&machine);
        let plan = state.plan_unified(&machine, g.view(), &refs, bpe);
        // With ample budget: first touch faults at most one page span per
        // active vertex, at least the payload's pages.
        let page = machine.um.page_bytes;
        let payload: u64 = refs.iter().map(|a| a.active_edges * bpe).sum();
        let max_spans: u64 = refs
            .iter()
            .flat_map(|a| a.active_vertices.iter())
            .map(|&v| {
                let len = g.out_degree(v) * bpe;
                machine.um.pages_for_range(g.row_offset()[v as usize] * bpe, len)
            })
            .sum();
        prop_assert!(plan.counters.page_faults <= max_spans);
        prop_assert!(plan.counters.page_faults * page >= payload.min(plan.counters.um_bytes));
        // Second pass over identical refs is all hits.
        let second = state.plan_unified(&machine, g.view(), &refs, bpe);
        prop_assert_eq!(second.counters.page_faults, 0);
    }

    #[test]
    fn cost_formulas_are_monotone_in_activity(g in arb_graph()) {
        // Growing the frontier can only grow Tec and Tiz, never shrink them;
        // Tef is activity-independent.
        let machine = MachineModel::paper_platform();
        let parts = PartitionSet::build(&g, 2048);
        let bpe = g.bytes_per_edge();
        let sparse = arb_frontier(g.num_vertices(), 6); // every 7th vertex
        let dense = Frontier::full(g.num_vertices());
        let a1 = analyze_partitions(g.view(), &parts, &sparse, &machine.pcie, bpe, 2);
        let a2 = analyze_partitions(g.view(), &parts, &dense, &machine.pcie, bpe, 2);
        for (s, d) in a1.iter().zip(&a2) {
            let cs: cost::PartitionCosts = partition_costs(s, &machine.pcie, bpe);
            let cd: cost::PartitionCosts = partition_costs(d, &machine.pcie, bpe);
            prop_assert_eq!(cs.tef, cd.tef);
            prop_assert!(cs.tec <= cd.tec + 1e-12);
            prop_assert!(cs.tiz <= cd.tiz + 1e-12);
        }
    }

    #[test]
    fn um_cache_never_exceeds_capacity(
        capacity_pages in 1u64..64,
        touches in proptest::collection::vec((0u64..1_000_000, 1u64..20_000), 1..100),
    ) {
        let model = UmModel::new(&MachineModel::paper_platform().pcie);
        let mut cache = UmCache::new(model, capacity_pages * model.page_bytes);
        let mut total_faults = 0;
        for (start, len) in touches {
            total_faults += cache.touch_range(start, len);
            prop_assert!(cache.resident_pages() <= capacity_pages);
        }
        prop_assert_eq!(cache.faults(), total_faults);
        prop_assert_eq!(cache.migrated_bytes(), total_faults * model.page_bytes);
    }
}
