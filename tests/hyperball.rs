//! HyperBall differential and property suite.
//!
//! Three claim families from ISSUE 6:
//!
//! 1. **Merge algebra** — the HLL register merge is commutative,
//!    associative and idempotent, so the sketch of a set is invariant
//!    under any sharding/ordering of its elements (proptests).
//! 2. **Accuracy** — the estimated neighbourhood function tracks the
//!    exact all-pairs-BFS oracle within standard HLL error bounds.
//! 3. **Determinism** — converged registers are **bit-identical** across
//!    device counts D ∈ {1, 2, 4, 8} and every topology: the merge is
//!    idempotent and commutative and iterations are synchronous, so
//!    placement can only change the timeline.

use hytgraph::algos::hyperball::{run_hyperball, HllSketch, HLL_RSE};
use hytgraph::algos::reference;
use hytgraph::core::{HyTGraphConfig, SystemKind, TopologyKind};
use hytgraph::graph::{generators, DeviceAssignment, EdgeList};
use proptest::prelude::*;

/// Sketch of a whole set of vertex ids.
fn sketch_of(ids: &[u32]) -> HllSketch {
    ids.iter().fold(HllSketch::empty(), |acc, &v| acc.merge(HllSketch::singleton(v)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in proptest::collection::vec(any::<u32>(), 0..100),
                            b in proptest::collection::vec(any::<u32>(), 0..100)) {
        let (sa, sb) = (sketch_of(&a), sketch_of(&b));
        prop_assert_eq!(sa.merge(sb), sb.merge(sa));
    }

    #[test]
    fn merge_is_associative(a in proptest::collection::vec(any::<u32>(), 0..80),
                            b in proptest::collection::vec(any::<u32>(), 0..80),
                            c in proptest::collection::vec(any::<u32>(), 0..80)) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        prop_assert_eq!(sa.merge(sb).merge(sc), sa.merge(sb.merge(sc)));
    }

    #[test]
    fn merge_is_idempotent(a in proptest::collection::vec(any::<u32>(), 0..150)) {
        let s = sketch_of(&a);
        prop_assert_eq!(s.merge(s), s);
    }

    #[test]
    fn sketch_is_invariant_under_shard_order(
        ids in proptest::collection::vec(any::<u32>(), 1..200),
        cut in 0usize..1000,
    ) {
        // Split the id stream at an arbitrary point into two "shards";
        // merging the shard sketches in either order — or interleaving
        // one element at a time — must produce the same registers, and
        // therefore the same estimate, as the sequential sketch.
        let k = cut % ids.len();
        let whole = sketch_of(&ids);
        let split = sketch_of(&ids[..k]).merge(sketch_of(&ids[k..]));
        let reversed = sketch_of(&ids[k..]).merge(sketch_of(&ids[..k]));
        prop_assert_eq!(split, whole);
        prop_assert_eq!(reversed, whole);
        prop_assert_eq!(split.estimate().to_bits(), whole.estimate().to_bits());
    }

    #[test]
    fn duplicate_insertion_never_changes_the_sketch(
        ids in proptest::collection::vec(0u32..500, 1..100),
    ) {
        // Idempotence in stream form: re-inserting every element again
        // (sets have no multiplicity) leaves the registers untouched.
        let once = sketch_of(&ids);
        let twice: Vec<u32> = ids.iter().chain(ids.iter()).copied().collect();
        prop_assert_eq!(sketch_of(&twice), once);
    }
}

/// HyTGraph preset on `d` devices / `topo`, single-threaded host kernels
/// (bit-identity baseline; the merge itself is also thread-invariant,
/// covered by the unit tests).
fn cfg(d: usize, topo: TopologyKind) -> HyTGraphConfig {
    let mut cfg = SystemKind::HyTGraph.configure(HyTGraphConfig::default());
    cfg.num_devices = d;
    cfg.device_assignment = DeviceAssignment::EdgeBalanced;
    cfg.topology = topo;
    cfg.threads = 1;
    cfg
}

#[test]
fn registers_bit_identical_across_device_counts_and_topologies() {
    let g = generators::rmat(10, 8.0, 21, false);
    let base = run_hyperball(g.clone(), cfg(1, TopologyKind::HostOnly));
    assert_eq!(base.run.counters.exchange_bytes, 0, "D=1 must not pay the exchange");
    for topo in TopologyKind::ALL {
        for d in [2usize, 4, 8] {
            let r = run_hyperball(g.clone(), cfg(d, topo));
            assert_eq!(r.run.values, base.run.values, "registers diverged at D={d} on {topo:?}");
            assert_eq!(r.run.iterations, base.run.iterations, "D={d} {topo:?}");
            assert_eq!(r.nf, base.nf, "trajectory diverged at D={d} on {topo:?}");
            assert!(r.run.counters.exchange_bytes > 0, "D={d} never exchanged");
        }
    }
}

#[test]
fn estimates_track_exact_oracle_within_error_bounds() {
    // Two shapes: a scale-free rmat and a symmetrised one (larger balls).
    for (g, label) in [
        (generators::rmat(9, 6.0, 5, false), "rmat"),
        (
            {
                let mut el = generators::rmat(8, 5.0, 11, false).to_edge_list();
                el.symmetrize();
                el.to_csr()
            },
            "symmetric rmat",
        ),
    ] {
        let oracle = reference::neighbourhood_function(&g);
        let r = run_hyperball(g, HyTGraphConfig::default());
        let upto = r.nf.len().min(oracle.nf.len());
        assert!(upto >= 2, "{label}: no radii to compare");
        for t in 1..upto {
            let rel = (r.nf[t] - oracle.nf[t]).abs() / oracle.nf[t];
            assert!(
                rel < 4.0 * HLL_RSE,
                "{label} t={t}: sketch {} vs exact {} (rel {rel})",
                r.nf[t],
                oracle.nf[t]
            );
        }
    }
}

#[test]
fn harmonic_centrality_ranks_a_star_centre_first() {
    // Directed star: every leaf points at the centre, so the centre has
    // the maximal in-harmonic centrality and the leaves have none.
    let n = 32u32;
    let mut el = EdgeList::new(n);
    for v in 1..n {
        el.push(v, 0);
    }
    let r = run_hyperball(el.to_csr(), HyTGraphConfig::default());
    assert!(r.harmonic[0] > 0.0);
    for v in 1..n as usize {
        assert!(r.harmonic[0] > r.harmonic[v], "leaf {v} outranked the centre");
        assert_eq!(r.closeness[v], 0.0);
    }
    assert_eq!(r.diameter_lower_bound, 1);
    // Exact here: 31 leaves at distance 1, each clamped-positive delta
    // read off a 31-element sketch, within the standard error of 31.
    let rel = (r.harmonic[0] - (n - 1) as f64).abs() / (n - 1) as f64;
    assert!(rel < 4.0 * HLL_RSE, "centre harmonic {} (rel {rel})", r.harmonic[0]);
}

#[test]
fn wide_layout_is_reported_and_exchange_records_are_sketch_sized() {
    // Big enough for several partitions, so both devices hold a shard.
    let g = generators::rmat(11, 8.0, 33, false);
    let r = run_hyperball(g, cfg(2, TopologyKind::HostOnly));
    let layout = r.run.value_layout;
    assert_eq!(layout.lanes, 8, "64 HLL registers are 8 lanes");
    assert_eq!(layout.wire_bytes, 64);
    assert_eq!(layout.record_bytes(), 68);
    // The all-gather payload is a whole number of (id + registers)
    // records fanned out to the other shard holder.
    assert!(r.run.counters.exchange_bytes > 0);
    assert_eq!(r.run.counters.exchange_bytes % layout.record_bytes(), 0);
}
