//! Property tests for the heterogeneous interconnect routing layer
//! (ISSUE 4): per-link specs, full- vs half-duplex queueing, and
//! multi-hop device-via-device forwarding.
//!
//! Three families of invariants:
//!
//! * **duplex** — splitting each peer link's two directions into their
//!   own queues can only shorten the all-gather: every full-duplex queue
//!   carries a subset of the corresponding half-duplex queue's legs, so
//!   the makespan is monotone. Wire occupancy and byte counts must not
//!   change at all.
//! * **payload** — the logical exchange payload is a property of the
//!   participants, never of the topology, the link specs, or the duplex
//!   discipline.
//! * **routing** — the chosen route is the cheapest priced path at the
//!   probe size: it satisfies the triangle inequality over intermediate
//!   devices, a forwarded path prices as exactly the sum of its hops
//!   (store-and-forward, never cheaper), and no route prices above host
//!   staging.

use hytgraph::sim::{Interconnect, LinkSpec, PcieModel, Route, TopologyKind, ROUTE_PROBE_BYTES};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// Nominal per-direction bandwidths of the link generations the mixed
/// meshes draw from (x4 bridges up to NVLink4-class), bytes/s.
const GENERATIONS: [f64; 6] = [8.0e9, 16.0e9, 25.0e9, 50.0e9, 100.0e9, 200.0e9];

fn spec(generation: usize) -> LinkSpec {
    LinkSpec::with_nominal_bw(GENERATIONS[generation % GENERATIONS.len()])
}

/// A mixed-generation ring over `gens.len()` devices (one entry per
/// neighbour link).
fn mixed_ring(gens: &[usize], half: bool) -> Interconnect {
    let specs: Vec<LinkSpec> =
        gens.iter().map(|&g| if half { spec(g).half_duplex() } else { spec(g) }).collect();
    Interconnect::ring_with_specs(gens.len(), PcieModel::pcie3(), &specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_duplex_never_slower_than_half_duplex_uniform(
        owned in proptest::collection::vec(0u64..2_000_000, 2..8),
        participates_bits in proptest::collection::vec(any::<bool>(), 2..8),
        kind_idx in 0usize..3,
        generation in 0usize..6,
    ) {
        let nd = owned.len();
        let mut participates: Vec<bool> =
            participates_bits.iter().cycle().take(nd).copied().collect();
        participates[0] = true; // at least one participant
        let kind = TopologyKind::ALL[kind_idx];
        let p = PcieModel::pcie3();
        let full = Interconnect::build(kind, nd, p, spec(generation))
            .price_all_gather(&owned, &participates);
        let half = Interconnect::build(kind, nd, p, spec(generation).half_duplex())
            .price_all_gather(&owned, &participates);
        prop_assert!(
            full.makespan <= half.makespan + EPS,
            "full {} > half {}", full.makespan, half.makespan
        );
        // Duplex changes only the queueing, never the work: wire
        // occupancy, byte counts, and class totals are identical.
        prop_assert_eq!(&full.per_link_busy, &half.per_link_busy);
        prop_assert_eq!(full.peer_bytes, half.peer_bytes);
        prop_assert_eq!(full.host_bytes, half.host_bytes);
        prop_assert_eq!(full.forwarded_bytes, half.forwarded_bytes);
        prop_assert_eq!(full.payload_bytes, half.payload_bytes);
        prop_assert!((full.host_time - half.host_time).abs() < EPS);
        prop_assert!((full.peer_time - half.peer_time).abs() < EPS);
    }

    #[test]
    fn full_duplex_never_slower_on_mixed_generation_rings(
        gens in proptest::collection::vec(0usize..6, 3..9),
        owned_seed in proptest::collection::vec(0u64..1_500_000, 3..9),
    ) {
        let nd = gens.len();
        let owned: Vec<u64> = owned_seed.iter().cycle().take(nd).copied().collect();
        let participates = vec![true; nd];
        let full = mixed_ring(&gens, false).price_all_gather(&owned, &participates);
        let half = mixed_ring(&gens, true).price_all_gather(&owned, &participates);
        prop_assert!(
            full.makespan <= half.makespan + EPS,
            "full {} > half {}", full.makespan, half.makespan
        );
        prop_assert_eq!(&full.per_link_busy, &half.per_link_busy);
    }

    #[test]
    fn payload_bytes_invariant_under_topology_spec_and_duplex(
        owned in proptest::collection::vec(0u64..2_000_000, 2..8),
        participates_bits in proptest::collection::vec(any::<bool>(), 2..8),
        generation in 0usize..6,
    ) {
        let nd = owned.len();
        let participates: Vec<bool> =
            participates_bits.iter().cycle().take(nd).copied().collect();
        let holders = participates.iter().filter(|&&p| p).count() as u64;
        let total: u64 = owned
            .iter()
            .zip(&participates)
            .filter(|&(_, &p)| p)
            .map(|(&o, _)| o)
            .sum();
        let expected = if holders <= 1 || total == 0 { 0 } else { total * (holders - 1) };
        let p = PcieModel::pcie3();
        for kind in TopologyKind::ALL {
            for s in [spec(generation), spec(generation).half_duplex()] {
                let r = Interconnect::build(kind, nd, p, s)
                    .price_all_gather(&owned, &participates);
                prop_assert_eq!(r.payload_bytes, expected);
            }
        }
    }

    #[test]
    fn routes_are_cheapest_paths_and_respect_the_triangle_inequality(
        gens in proptest::collection::vec(0usize..6, 3..9),
        slow_sel in 0usize..16,
    ) {
        let nd = gens.len();
        // Roughly half the cases derate one bridge to 1 GB/s so host
        // staging and detours actually win somewhere.
        let mut ic = mixed_ring(&gens, false);
        if slow_sel < nd {
            let (a, b) = (slow_sel as u32, ((slow_sel + 1) % nd) as u32);
            ic = ic.with_link_spec(a, b, LinkSpec::with_nominal_bw(1.0e9));
        }
        let probe = ROUTE_PROBE_BYTES;
        let host_cost = 2.0 * ic.transfer_time(ic.host_link(), probe);
        for s in 0..nd as u32 {
            for d in (0..nd as u32).filter(|&d| d != s) {
                let cost = ic.route_cost(s, d, probe);
                // Never above host staging (which is always available).
                prop_assert!(cost <= host_cost + EPS, "{s}->{d}: {cost} > host {host_cost}");
                match ic.route(s, d, probe) {
                    Route::Direct(l) => {
                        prop_assert!((cost - ic.transfer_time(*l, probe)).abs() < EPS);
                    }
                    Route::Forwarded(hops) => {
                        prop_assert!(hops.len() >= 2);
                        // Store-and-forward: the path prices as exactly
                        // the sum of its hops, never below any one hop.
                        let sum: f64 =
                            hops.iter().map(|&l| ic.transfer_time(l, probe)).sum();
                        prop_assert!((cost - sum).abs() < EPS);
                        for &l in hops {
                            prop_assert!(cost >= ic.transfer_time(l, probe) - EPS);
                        }
                    }
                    Route::HostStaged => {
                        prop_assert!((cost - host_cost).abs() < EPS);
                    }
                }
                // Triangle inequality over every intermediate device.
                for m in (0..nd as u32).filter(|&m| m != s && m != d) {
                    let via = ic.route_cost(s, m, probe) + ic.route_cost(m, d, probe);
                    prop_assert!(
                        cost <= via + EPS,
                        "{s}->{d} ({cost}) beats the triangle via {m} ({via})"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_half_duplex_cliques_match_pr3_per_link_queues(
        owned in proptest::collection::vec(0u64..2_000_000, 2..7),
        generation in 0usize..6,
    ) {
        // PR 3's pricing for a uniform clique, verbatim: every ordered
        // pair's batch occupies its direct link's single queue.
        let nd = owned.len();
        let s = spec(generation).half_duplex();
        let ic = Interconnect::build(TopologyKind::AllToAll, nd, PcieModel::pcie3(), s);
        let participates = vec![true; nd];
        let r = ic.price_all_gather(&owned, &participates);
        let total: u64 = owned.iter().sum();
        if total == 0 || nd < 2 {
            prop_assert_eq!(r.makespan, 0.0);
            return Ok(());
        }
        let mut link_busy = vec![0.0f64; ic.num_links()];
        for src in 0..nd as u32 {
            for dst in (0..nd as u32).filter(|&d| d != src) {
                let b = owned[src as usize];
                if b > 0 {
                    link_busy[ic.peer_link(src, dst).unwrap()] += s.transfer_time(b);
                }
            }
        }
        let makespan = link_busy.iter().fold(0.0f64, |a, &b| a.max(b));
        prop_assert_eq!(r.makespan, makespan);
        prop_assert_eq!(&r.per_link_busy, &link_busy);
        prop_assert_eq!(r.host_bytes, 0);
        prop_assert_eq!(r.forwarded_bytes, 0);
    }
}

#[test]
fn forwarding_is_reported_and_bounded_on_rings() {
    // Deterministic end-to-end: a 6-device uniform ring forwards the
    // distance ≥ 2 pairs, reports the relayed bytes, and stays within
    // the host-staged envelope.
    let ic = Interconnect::build(TopologyKind::Ring, 6, PcieModel::pcie3(), LinkSpec::nvlink());
    let owned = vec![100_000u64; 6];
    let participates = vec![true; 6];
    let r = ic.price_all_gather(&owned, &participates);
    assert!(r.forwarded_bytes > 0, "distance >= 2 pairs must forward");
    assert_eq!(r.host_bytes, 0, "fast uniform rings never stage through the host");
    let host =
        Interconnect::host_only(6, PcieModel::pcie3()).price_all_gather(&owned, &participates);
    assert!(r.makespan < host.makespan);
    // Relayed bytes are the per-hop overhang of the peer traffic: every
    // record crosses at least one link, so peer_bytes exceeds the
    // forwarded share by exactly one payload per delivered batch.
    assert!(r.peer_bytes > r.forwarded_bytes);
    assert_eq!(r.peer_bytes - r.forwarded_bytes, r.payload_bytes);
}
