//! Kernel determinism: the static thread-split claim of
//! `crates/core/src/kernel.rs`.
//!
//! `run_kernel` splits the active list into contiguous chunks, one scoped
//! thread each, with every write going through an atomic CAS fold. For a
//! commutative program with snapshot (sync) seeds, the delivered message
//! multiset is fixed before the kernel starts, so **values and stats must
//! be bit-identical for every thread count** — there is nothing left for
//! scheduling to decide. These tests pin that guarantee across
//! `threads ∈ {1, 2, 8}` on several graph shapes, including the stats
//! (`edges_processed` is the active out-degree sum; `updates` and
//! `activations` are determined because each receiver sees at most one
//! improving message on these fixtures).

use hytgraph::core::api::{EdgeCtx, InitialFrontier, Values, VertexProgram};
use hytgraph::core::kernel::{run_kernel, EdgeSource, KernelStats};
use hytgraph::graph::generators;
use hytgraph::graph::{Csr, Frontier, VertexId};

/// Min-fold relaxation: commutative and idempotent (SSSP-shaped).
struct MinRelax;
impl VertexProgram for MinRelax {
    type Value = u32;
    const NEEDS_WEIGHTS: bool = true;
    fn init(&self, v: VertexId) -> u32 {
        if v == 0 {
            0
        } else {
            u32::MAX
        }
    }
    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::Set(vec![0])
    }
    fn message(&self, seed: u32, ctx: EdgeCtx) -> Option<u32> {
        (seed != u32::MAX).then(|| seed.saturating_add(ctx.weight))
    }
    fn accumulate(&self, state: u32, msg: u32) -> Option<u32> {
        (msg < state).then_some(msg)
    }
}

/// One sync-seeded sweep over `active`; returns (values, frontier, stats).
fn sweep(g: &Csr, active: &[VertexId], threads: usize) -> (Vec<u32>, Vec<VertexId>, KernelStats) {
    let nv = g.num_vertices();
    let values = Values::init(&MinRelax, nv);
    let next = Frontier::new(nv);
    let snap = values.snapshot();
    let stats = run_kernel(
        &MinRelax,
        EdgeSource::Graph(g.view()),
        active,
        &values,
        &next,
        Some(&snap),
        threads,
    );
    (values.snapshot(), next.to_vec(), stats)
}

#[test]
fn star_scatter_identical_across_thread_counts() {
    // Hub 0 fans out to 999 spokes: every receiver gets exactly one
    // message, so stats are fully determined.
    let g = generators::star(1000, true);
    let active: Vec<u32> = (0..g.num_vertices()).collect();
    let base = sweep(&g, &active, 1);
    for threads in [2usize, 8] {
        assert_eq!(sweep(&g, &active, threads), base, "threads = {threads}");
    }
    assert_eq!(base.2.edges_processed, 999);
    assert_eq!(base.2.activations, 999);
}

#[test]
fn chain_relaxation_identical_across_thread_counts() {
    let g = generators::chain(4096, true);
    let active: Vec<u32> = (0..g.num_vertices()).collect();
    let base = sweep(&g, &active, 1);
    for threads in [2usize, 8] {
        assert_eq!(sweep(&g, &active, threads), base, "threads = {threads}");
    }
}

#[test]
fn multi_round_snapshot_sweeps_identical_on_random_graph() {
    // RMAT has receivers with in-degree > 1, so `updates` could depend on
    // delivery order within one round — values must not. Run three
    // snapshot rounds and compare the value arrays bit-for-bit.
    let g = generators::rmat(11, 8.0, 5, true);
    let nv = g.num_vertices();
    let active: Vec<u32> = (0..nv).collect();
    let run = |threads: usize| {
        let values = Values::init(&MinRelax, nv);
        let next = Frontier::new(nv);
        let mut edges = 0u64;
        for _ in 0..3 {
            let snap = values.snapshot();
            let s = run_kernel(
                &MinRelax,
                EdgeSource::Graph(g.view()),
                &active,
                &values,
                &next,
                Some(&snap),
                threads,
            );
            edges += s.edges_processed;
        }
        (values.snapshot(), edges)
    };
    let (v1, e1) = run(1);
    for threads in [2usize, 8] {
        let (v, e) = run(threads);
        assert_eq!(v, v1, "values diverged at threads = {threads}");
        // Processed-edge counts are the active out-degree sum: exact.
        assert_eq!(e, e1);
    }
}

#[test]
fn compacted_source_is_equally_deterministic() {
    let g = generators::rmat(10, 6.0, 9, true);
    let active: Vec<u32> = (0..g.num_vertices()).step_by(2).collect();
    let compacted = hytgraph::engines::compaction::compact(g.view(), &active, 4);
    let nv = g.num_vertices();
    let run = |threads: usize| {
        let values = Values::init(&MinRelax, nv);
        let next = Frontier::new(nv);
        let snap = values.snapshot();
        let stats = run_kernel(
            &MinRelax,
            EdgeSource::Compacted(&compacted),
            &active,
            &values,
            &next,
            Some(&snap),
            threads,
        );
        (values.snapshot(), next.to_vec(), stats)
    };
    let base = run(1);
    for threads in [2usize, 8] {
        assert_eq!(run(threads), base, "threads = {threads}");
    }
}
