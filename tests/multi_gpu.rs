//! Differential tests for multi-GPU sharded execution.
//!
//! The sharding contract (ISSUE 2): for any device count `D`, the runner
//! must produce values and a convergence-iteration count **bit-identical**
//! to the `D = 1` run — sharding may only change the timeline. These tests
//! hold the runner to that with fixed mid-size graphs, a proptest sweep
//! over random graphs, and the sequential oracles as ground truth.
//!
//! Bit-identity claims run with `threads: 1`: single-threaded host kernels
//! are fully deterministic, so any value difference is a real sharding bug
//! and not a benign float/fold race. Default-thread runs are additionally
//! checked against the oracles (exact for the monotone integer
//! algorithms).

use hytgraph::algos::reference;
use hytgraph::core::{HyTGraphConfig, HyTGraphSystem, SystemKind, TopologyKind};
use hytgraph::graph::generators;
use hytgraph::graph::DeviceAssignment;
use hytgraph::prelude::*;
use proptest::prelude::*;

/// HyTGraph preset sharded over `d` devices, single-threaded host kernels.
fn sharded_config(d: usize, assignment: DeviceAssignment) -> HyTGraphConfig {
    let mut cfg = SystemKind::HyTGraph.configure(HyTGraphConfig::default());
    cfg.num_devices = d;
    cfg.device_assignment = assignment;
    cfg.threads = 1;
    cfg
}

/// Run `program` on `g` with `d` devices; return (values, iterations,
/// total simulated time, exchange bytes).
fn run_with<P: hytgraph::core::api::VertexProgram>(
    g: &Csr,
    d: usize,
    assignment: DeviceAssignment,
    program: P,
) -> (Vec<P::Value>, u32, f64, u64) {
    let mut sys = HyTGraphSystem::new(g.clone(), sharded_config(d, assignment));
    let r = sys.run(program);
    (r.values, r.iterations, r.total_time, r.counters.exchange_bytes)
}

#[test]
fn all_four_algorithms_bit_identical_across_device_counts() {
    let g = generators::rmat(11, 10.0, 42, true);
    let assign = DeviceAssignment::EdgeBalanced;

    let (sssp1, si1, _, x1) = run_with(&g, 1, assign, Sssp::from_source(0));
    assert_eq!(x1, 0, "single-device runs must not pay the exchange");
    assert_eq!(sssp1, reference::dijkstra(&g, 0));
    let (bfs1, bi1, _, _) = run_with(&g, 1, assign, Bfs::from_source(0));
    assert_eq!(bfs1, reference::bfs_depths(&g, 0));
    let (cc1, ci1, _, _) = run_with(&g, 1, assign, Cc::new());
    assert_eq!(cc1, reference::cc_labels(&g));
    let pr1 = {
        let mut sys = HyTGraphSystem::new(g.clone(), sharded_config(1, assign));
        let r = sys.run(PageRank::new());
        (PageRank::ranks(&r), r.iterations)
    };

    for d in [2usize, 4, 8] {
        let (sssp, si, _, sx) = run_with(&g, d, assign, Sssp::from_source(0));
        assert_eq!((sssp, si), (sssp1.clone(), si1), "SSSP diverged at D={d}");
        assert!(sx > 0, "multi-device SSSP run never exchanged frontiers");
        let (bfs, bi, _, _) = run_with(&g, d, assign, Bfs::from_source(0));
        assert_eq!((bfs, bi), (bfs1.clone(), bi1), "BFS diverged at D={d}");
        let (cc, ci, _, _) = run_with(&g, d, assign, Cc::new());
        assert_eq!((cc, ci), (cc1.clone(), ci1), "CC diverged at D={d}");
        let mut sys = HyTGraphSystem::new(g.clone(), sharded_config(d, assign));
        let r = sys.run(PageRank::new());
        assert_eq!((PageRank::ranks(&r), r.iterations), pr1.clone(), "PageRank diverged at D={d}");
    }
}

#[test]
fn hub_aware_assignment_is_also_value_transparent() {
    let g = generators::rmat(11, 8.0, 7, true);
    let (base, i1, _, _) = run_with(&g, 1, DeviceAssignment::EdgeBalanced, Sssp::from_source(0));
    for d in [2usize, 4] {
        let (v, i, _, _) = run_with(&g, d, DeviceAssignment::HubAware, Sssp::from_source(0));
        assert_eq!((v, i), (base.clone(), i1), "hub-aware D={d}");
    }
}

#[test]
fn default_thread_runs_still_match_oracles_when_sharded() {
    // With the default host parallelism the monotone integer algorithms
    // must still land exactly on the oracle fixpoint at any device count.
    let g = generators::rmat(12, 12.0, 99, true);
    let mut cfg = SystemKind::HyTGraph.configure(HyTGraphConfig::default());
    cfg.num_devices = 4;
    let mut sys = HyTGraphSystem::new(g.clone(), cfg.clone());
    assert_eq!(sys.run(Sssp::from_source(0)).values, reference::dijkstra(&g, 0));
    let mut sys = HyTGraphSystem::new(g.clone(), cfg);
    assert_eq!(sys.run(Cc::new()).values, reference::cc_labels(&g));
}

#[test]
fn per_device_stats_partition_the_iteration() {
    let g = generators::rmat(11, 10.0, 3, true);
    let d = 4usize;
    let mut sys = HyTGraphSystem::new(g.clone(), sharded_config(d, DeviceAssignment::EdgeBalanced));
    let r = sys.run(Sssp::from_source(0));
    for it in &r.per_iteration {
        assert_eq!(it.per_device.len(), d);
        let mix_total: u32 = it.per_device.iter().map(|ds| ds.mix.total()).sum();
        assert_eq!(mix_total, it.mix.total(), "device mixes must tile the global mix");
        let task_total: u32 = it.per_device.iter().map(|ds| ds.tasks).sum();
        assert_eq!(task_total, it.tasks);
        for ds in &it.per_device {
            assert!(
                ds.time <= it.time + 1e-12,
                "device {} makespan {} exceeds iteration time {}",
                ds.device,
                ds.time,
                it.time
            );
        }
        assert!(it.exchange.time >= 0.0);
    }
}

#[test]
fn idle_devices_pay_no_exchange() {
    // A graph small enough for one partition: 7 of the 8 "devices" own no
    // shard, so there are no peers and the exchange must stay zero.
    let g = generators::chain(64, true);
    let mut cfg = sharded_config(8, DeviceAssignment::EdgeBalanced);
    cfg.partition_bytes = 1 << 20; // everything fits one partition
    let mut sys = HyTGraphSystem::new(g.clone(), cfg);
    assert_eq!(sys.num_partitions(), 1);
    let r = sys.run(Sssp::from_source(0));
    assert_eq!(r.counters.exchange_bytes, 0);
    assert_eq!(r.values, reference::dijkstra(&g, 0));
}

#[test]
fn sharded_baseline_systems_keep_oracle_results() {
    // The stateful residency baselines (per-device UM caches, per-device
    // Grus budgets) must stay correct when their device memory is carved
    // up.
    let g = generators::rmat(11, 8.0, 21, true);
    let oracle = reference::dijkstra(&g, 0);
    for kind in [SystemKind::ImpUnified, SystemKind::Grus, SystemKind::Emogi, SystemKind::Subway] {
        let mut cfg = kind.configure(HyTGraphConfig::default());
        cfg.num_devices = 4;
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        let r = sys.run(Sssp::from_source(0));
        assert_eq!(r.values, oracle, "{} diverged when sharded", kind.name());
    }
}

/// Run SSSP on `g` over `d` devices with `topo`, collecting values,
/// iterations, exchange payload, and the summed per-link-class breakdown.
fn run_topology(
    g: &Csr,
    d: usize,
    topo: TopologyKind,
) -> (Vec<u32>, u32, u64, hytgraph::core::ExchangeStats) {
    let mut cfg = sharded_config(d, DeviceAssignment::EdgeBalanced);
    cfg.topology = topo;
    let mut sys = HyTGraphSystem::new(g.clone(), cfg);
    let r = sys.run(Sssp::from_source(0));
    let mut x = hytgraph::core::ExchangeStats::default();
    for it in &r.per_iteration {
        x.merge(&it.exchange);
    }
    (r.values, r.iterations, r.counters.exchange_bytes, x)
}

#[test]
fn topology_changes_the_timeline_but_never_the_computation() {
    let g = generators::rmat(11, 10.0, 42, true);
    let d = 4usize;
    let (base_v, base_i, base_payload, base_x) = run_topology(&g, d, TopologyKind::HostOnly);
    assert_eq!(base_x.peer_bytes, 0, "host-only has no peer links");
    assert_eq!(base_x.peer_time, 0.0);
    assert!(base_x.host_bytes > base_payload, "staged records cross two hops");
    for topo in [TopologyKind::Ring, TopologyKind::AllToAll] {
        let (v, i, payload, x) = run_topology(&g, d, topo);
        assert_eq!((v, i), (base_v.clone(), base_i), "{topo:?} changed the computation");
        assert_eq!(payload, base_payload, "{topo:?}: exchange payload must be routing-invariant");
        assert!(x.peer_bytes > 0, "{topo:?} moved nothing over peer links");
        assert!(
            x.time < base_x.time,
            "{topo:?} exchange {} not below host-only {}",
            x.time,
            base_x.time
        );
        if topo == TopologyKind::AllToAll {
            // The clique never stages through the host.
            assert_eq!(x.host_bytes, 0);
            assert_eq!(x.host_time, 0.0);
        }
    }
}

#[test]
fn overlap_exchange_hides_time_without_touching_values() {
    let g = generators::rmat(11, 10.0, 9, true);
    let run = |overlap: bool| {
        let mut cfg = sharded_config(4, DeviceAssignment::EdgeBalanced);
        cfg.overlap_exchange = overlap;
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        sys.run(Sssp::from_source(0))
    };
    let serial = run(false);
    let overlapped = run(true);
    assert_eq!(serial.values, overlapped.values);
    assert_eq!(serial.iterations, overlapped.iterations);
    assert!(
        overlapped.total_time < serial.total_time,
        "overlap should hide exchange time: {} vs {}",
        overlapped.total_time,
        serial.total_time
    );
    let hidden: f64 = overlapped.per_iteration.iter().map(|it| it.exchange.hidden).sum();
    assert!(hidden > 0.0, "nothing was overlapped");
    assert!(
        (serial.total_time - overlapped.total_time - hidden).abs() < 1e-12,
        "the saving must equal the hidden exchange time"
    );
    for it in &overlapped.per_iteration {
        assert!(it.exchange.hidden <= it.exchange.time + 1e-15);
        assert!(it.exchange.exposed() >= -1e-15);
    }
    assert!(serial.per_iteration.iter().all(|it| it.exchange.hidden == 0.0));
}

#[test]
fn heterogeneous_and_duplex_configs_stay_value_transparent() {
    // ISSUE 4: per-link specs, duplex discipline, and multi-hop
    // forwarding may only change the timeline — values, iterations, and
    // the logical exchange payload must match the host-only run exactly.
    use hytgraph::core::LinkSpec;
    let g = generators::rmat(11, 10.0, 42, true);
    let d = 4usize;
    let (base_v, base_i, base_payload, _) = run_topology(&g, d, TopologyKind::HostOnly);
    let variants: Vec<(&str, HyTGraphConfig)> = vec![
        ("half-duplex ring", {
            let mut cfg = sharded_config(d, DeviceAssignment::EdgeBalanced);
            cfg.topology = TopologyKind::Ring;
            cfg.peer_link = cfg.peer_link.half_duplex();
            cfg
        }),
        ("mixed-generation ring", {
            let mut cfg = sharded_config(d, DeviceAssignment::EdgeBalanced);
            cfg.topology = TopologyKind::Ring;
            cfg.link_overrides = vec![
                (0, 1, LinkSpec::with_nominal_bw(100.0e9).scaled(10)),
                (2, 3, LinkSpec::with_nominal_bw(25.0e9).scaled(10)),
            ];
            cfg
        }),
        ("slow-bridge ring", {
            let mut cfg = sharded_config(d, DeviceAssignment::EdgeBalanced);
            cfg.topology = TopologyKind::Ring;
            cfg.link_overrides = vec![(1, 2, LinkSpec::with_nominal_bw(2.0e9).scaled(10))];
            cfg
        }),
    ];
    for (label, cfg) in variants {
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        let r = sys.run(Sssp::from_source(0));
        assert_eq!(r.values, base_v, "{label} changed the computed values");
        assert_eq!(r.iterations, base_i, "{label} changed the iteration count");
        assert_eq!(
            r.counters.exchange_bytes, base_payload,
            "{label}: exchange payload must be routing-invariant"
        );
    }
}

/// Strategy: seeded weighted RMAT graphs spanning several partitions.
fn arb_rmat() -> impl Strategy<Value = Csr> {
    (8u32..=10, 4u64..=10, 0u64..1_000)
        .prop_map(|(scale, deg, seed)| generators::rmat(scale, deg as f64, seed, true))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_graphs_bit_identical_for_every_algorithm(
        g in arb_rmat(),
        d in 2usize..=4,
        hub_aware in any::<bool>(),
    ) {
        let assign = if hub_aware { DeviceAssignment::HubAware } else { DeviceAssignment::EdgeBalanced };
        let src = (0..g.num_vertices()).max_by_key(|&v| g.out_degree(v)).unwrap_or(0);

        let (s1, si1, _, _) = run_with(&g, 1, assign, Sssp::from_source(src));
        let (sd, sid, _, _) = run_with(&g, d, assign, Sssp::from_source(src));
        prop_assert_eq!(&sd, &s1);
        prop_assert_eq!(sid, si1);
        prop_assert_eq!(&s1, &reference::dijkstra(&g, src));

        let (b1, bi1, _, _) = run_with(&g, 1, assign, Bfs::from_source(src));
        let (bd, bid, _, _) = run_with(&g, d, assign, Bfs::from_source(src));
        prop_assert_eq!(&bd, &b1);
        prop_assert_eq!(bid, bi1);
        prop_assert_eq!(&b1, &reference::bfs_depths(&g, src));

        let (c1, ci1, _, _) = run_with(&g, 1, assign, Cc::new());
        let (cd, cid, _, _) = run_with(&g, d, assign, Cc::new());
        prop_assert_eq!(&cd, &c1);
        prop_assert_eq!(cid, ci1);
        prop_assert_eq!(&c1, &reference::cc_labels(&g));

        let run_pr = |dd: usize| {
            let mut sys = HyTGraphSystem::new(g.clone(), sharded_config(dd, assign));
            let r = sys.run(PageRank::new());
            (PageRank::ranks(&r), r.iterations)
        };
        let (p1, pi1) = run_pr(1);
        let (pd, pid) = run_pr(d);
        prop_assert_eq!(pd, p1);
        prop_assert_eq!(pid, pi1);
    }

    #[test]
    fn random_graphs_are_topology_invariant(
        g in arb_rmat(),
        d in 2usize..=4,
        ring in any::<bool>(),
    ) {
        // Values, iterations, and the logical exchange payload must not
        // depend on how the interconnect routes the all-gather; only the
        // per-link timeline may change.
        let topo = if ring { TopologyKind::Ring } else { TopologyKind::AllToAll };
        let (v_host, i_host, payload_host, x_host) = run_topology(&g, d, TopologyKind::HostOnly);
        let (v, i, payload, x) = run_topology(&g, d, topo);
        prop_assert_eq!(&v, &v_host);
        prop_assert_eq!(i, i_host);
        prop_assert_eq!(payload, payload_host);
        // Peer routing never makes the exchange slower than full staging.
        prop_assert!(x.time <= x_host.time + 1e-12);
        // Host-only D=1 must stay exchange-free whatever the topology
        // field says (no peers to talk to).
        let (v1, i1, p1, x1) = run_topology(&g, 1, topo);
        prop_assert_eq!(&v1, &v_host);
        prop_assert_eq!(i1, i_host);
        prop_assert_eq!(p1, 0);
        prop_assert_eq!(x1.time, 0.0);
    }
}
