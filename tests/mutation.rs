//! Streaming-mutation differential suite: the tentpole correctness
//! contract of the delta-CSR layer.
//!
//! A resident [`HyTGraphSystem`] absorbs interleaved mutation batches and
//! queries; after **every** query step the answer must be bit-identical
//! to a cold system built from scratch on the then-current edge set —
//! for every device count `D ∈ {1, 2, 4, 8}`, every topology, and both
//! placement modes. The resident system carries delta segments, dirty
//! partial caches, possibly a mid-stream compaction; the cold oracle has
//! none of that history. Equality proves the incremental machinery
//! (delta adjacency views, partition-local invalidation, reactivation,
//! compaction rebuilds) is invisible to computed values.

use hytgraph::core::{HyTGraphConfig, HyTGraphSystem, SystemKind, TopologyKind};
use hytgraph::graph::{generators, Csr, DeviceAssignment, EdgeList, MutationBatch};
use hytgraph::prelude::*;
use std::collections::BTreeMap;

fn cfg(d: usize, topo: TopologyKind, assign: DeviceAssignment) -> HyTGraphConfig {
    let mut c = SystemKind::HyTGraph.configure(HyTGraphConfig::default());
    c.num_devices = d;
    c.topology = topo;
    c.device_assignment = assign;
    c.threads = 1; // deterministic bit-comparison, per the check harness
    c
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Shadow edge set: the oracle's ground truth. Kept duplicate-free so a
/// delete is unambiguous regardless of adjacency iteration order.
struct Shadow {
    nv: u32,
    weights: BTreeMap<(u32, u32), u32>,
    keys: Vec<(u32, u32)>,
}

impl Shadow {
    fn of(g: &Csr) -> Self {
        let mut weights = BTreeMap::new();
        for v in 0..g.num_vertices() {
            for (i, &d) in g.neighbors(v).iter().enumerate() {
                weights.insert((v, d), g.weights_of(v)[i]);
            }
        }
        let keys = weights.keys().copied().collect();
        Shadow { nv: g.num_vertices(), weights, keys }
    }

    fn to_csr(&self) -> Csr {
        let mut el = EdgeList::new(self.nv);
        for (&(s, d), &w) in &self.weights {
            el.push_weighted(s, d, w);
        }
        el.to_csr()
    }
}

/// One scripted step of the interleaved stream.
enum Step {
    Bfs(u32),
    Sssp(u32),
    Mutate(MutationBatch),
}

/// Build a deterministic script of queries and mutation batches over a
/// shadow that tracks the evolving edge set. Batches mix inserts of
/// absent edges with deletes of present ones; the delete-heavy tail
/// drives the priced compaction trigger on at least one configuration.
fn script(shadow: &mut Shadow, steps: usize, seed: u64) -> Vec<Step> {
    let mut rng = seed;
    let mut out = Vec::new();
    for i in 0..steps {
        match i % 3 {
            0 => out.push(Step::Bfs(splitmix(&mut rng) as u32 % shadow.nv)),
            1 => out.push(Step::Sssp(splitmix(&mut rng) as u32 % shadow.nv)),
            _ => {
                let mut batch = MutationBatch::new();
                for _ in 0..12 {
                    if splitmix(&mut rng).is_multiple_of(3) && !shadow.keys.is_empty() {
                        let at = splitmix(&mut rng) as usize % shadow.keys.len();
                        let (s, d) = shadow.keys.swap_remove(at);
                        shadow.weights.remove(&(s, d));
                        batch.delete(s, d);
                    } else {
                        let s = splitmix(&mut rng) as u32 % shadow.nv;
                        let d = splitmix(&mut rng) as u32 % shadow.nv;
                        let w = 1 + (splitmix(&mut rng) as u32 % 63);
                        if let std::collections::btree_map::Entry::Vacant(e) =
                            shadow.weights.entry((s, d))
                        {
                            e.insert(w);
                            shadow.keys.push((s, d));
                            batch.insert_weighted(s, d, w);
                        }
                    }
                }
                out.push(Step::Mutate(batch));
            }
        }
    }
    out
}

/// A duplicate-free weighted base graph spanning several partitions.
fn base_graph() -> Csr {
    let g = generators::rmat(9, 8.0, 21, true);
    let mut el = EdgeList::new(g.num_vertices());
    for v in 0..g.num_vertices() {
        for (i, &d) in g.neighbors(v).iter().enumerate() {
            el.push_weighted(v, d, g.weights_of(v)[i]);
        }
    }
    el.dedup();
    el.to_csr()
}

/// Replay `steps` on a resident system under `c`, checking every query
/// against a cold build of the shadow at that point in the stream.
fn replay(base: &Csr, steps: &[Step], c: &HyTGraphConfig) {
    let mut sys = HyTGraphSystem::new(base.clone(), c.clone());
    let mut shadow = Shadow::of(base);
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Bfs(s) => {
                let live = sys.run(Bfs::from_source(*s)).values;
                let mut cold = HyTGraphSystem::new(shadow.to_csr(), c.clone());
                assert_eq!(
                    live,
                    cold.run(Bfs::from_source(*s)).values,
                    "step {i}: resident BFS({s}) diverged from cold oracle"
                );
            }
            Step::Sssp(s) => {
                let live = sys.run(Sssp::from_source(*s)).values;
                let mut cold = HyTGraphSystem::new(shadow.to_csr(), c.clone());
                assert_eq!(
                    live,
                    cold.run(Sssp::from_source(*s)).values,
                    "step {i}: resident SSSP({s}) diverged from cold oracle"
                );
            }
            Step::Mutate(batch) => {
                let report = sys.apply_mutations(batch).unwrap();
                assert_eq!(report.applied, batch.len(), "step {i}: batch must apply fully");
                // Mirror into the shadow.
                for op in batch.ops() {
                    match *op {
                        hytgraph::graph::EdgeOp::Insert { src, dst, weight } => {
                            shadow.weights.insert((src, dst), weight);
                        }
                        hytgraph::graph::EdgeOp::Delete { src, dst } => {
                            shadow.weights.remove(&(src, dst));
                        }
                    }
                }
                shadow.keys = shadow.weights.keys().copied().collect();
                assert_eq!(sys.graph().num_edges(), shadow.weights.len() as u64);
            }
        }
    }
    // Final state: one more sweep over the end-of-stream edge set. (The
    // resident graph lives in working/hub-sorted ids, so adjacency is
    // compared through the algorithms — their results come back in
    // original-id order — rather than row by row.)
    let mut cold = HyTGraphSystem::new(shadow.to_csr(), c.clone());
    assert_eq!(sys.graph().num_edges(), cold.graph().num_edges());
    assert_eq!(
        sys.run(Sssp::from_source(0)).values,
        cold.run(Sssp::from_source(0)).values,
        "final SSSP diverged from cold oracle on the end-of-stream graph"
    );
}

#[test]
fn interleaved_mutations_match_cold_oracle_single_device() {
    let base = base_graph();
    let mut shadow = Shadow::of(&base);
    let steps = script(&mut shadow, 15, 0xfeed);
    replay(&base, &steps, &cfg(1, TopologyKind::HostOnly, DeviceAssignment::EdgeBalanced));
}

#[test]
fn interleaved_mutations_match_cold_oracle_across_devices_and_topologies() {
    let base = base_graph();
    let mut shadow = Shadow::of(&base);
    let steps = script(&mut shadow, 9, 0xabcd);
    for d in [2usize, 4, 8] {
        for topo in [TopologyKind::HostOnly, TopologyKind::Ring, TopologyKind::AllToAll] {
            replay(&base, &steps, &cfg(d, topo, DeviceAssignment::EdgeBalanced));
        }
    }
}

#[test]
fn interleaved_mutations_match_cold_oracle_under_cost_driven_placement() {
    let base = base_graph();
    let mut shadow = Shadow::of(&base);
    let steps = script(&mut shadow, 9, 0x5eed);
    for d in [2usize, 4, 8] {
        replay(&base, &steps, &cfg(d, TopologyKind::Ring, DeviceAssignment::CostDriven));
    }
}

#[test]
fn delete_heavy_stream_compacts_and_stays_correct() {
    // Delete most of the graph batch by batch: dead base slots pile up,
    // the priced surplus trips the fold, and correctness must survive the
    // partition/placement rebuild mid-stream.
    let base = base_graph();
    let c = cfg(2, TopologyKind::Ring, DeviceAssignment::EdgeBalanced);
    let mut sys = HyTGraphSystem::new(base.clone(), c.clone());
    let mut shadow = Shadow::of(&base);
    let mut rng = 0x7777u64;
    let mut compacted_ever = false;
    for round in 0..20 {
        let mut batch = MutationBatch::new();
        for _ in 0..shadow.keys.len().min(40) {
            let at = splitmix(&mut rng) as usize % shadow.keys.len();
            let (s, d) = shadow.keys.swap_remove(at);
            shadow.weights.remove(&(s, d));
            batch.delete(s, d);
        }
        let report = sys.apply_mutations(&batch).unwrap();
        compacted_ever |= report.compacted;
        if round % 4 == 3 {
            let live = sys.run(Bfs::from_source(0)).values;
            let mut cold = HyTGraphSystem::new(shadow.to_csr(), c.clone());
            assert_eq!(live, cold.run(Bfs::from_source(0)).values, "round {round}");
        }
    }
    assert!(compacted_ever, "a delete-heavy stream must trip the priced compaction");
}
