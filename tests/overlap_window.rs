//! Regressions for the exchange-overlap window fix.
//!
//! The overlap feature hides iteration `i`'s routed exchange under
//! iteration `i+1`'s cost analysis. The original implementation capped
//! the hidden time by the *fixed* per-iteration overhead constant —
//! crediting a full five-copy window even when the next iteration's
//! analysis was nearly idle (a drained frontier prices almost nothing)
//! and even on the run's *last* iteration, which has no successor to
//! hide under at all. The fix derives the window from the next
//! iteration's **actual** analysis span:
//!
//! ```text
//! window_i = ANALYSIS_SPAN_COPIES · copy_latency · active_frac_{i+1}
//! hidden_i = min(exchange_makespan_i, window_i),  hidden_last = 0
//! ```
//!
//! and keeps the old behaviour reachable as
//! [`OverlapWindow::FixedConstant`] so differential suites can still
//! reproduce historical timelines.

use hytgraph::algos::Sssp;
use hytgraph::core::runner::{analysis_span, ANALYSIS_SPAN_COPIES, ITERATION_OVERHEAD_COPIES};
use hytgraph::core::{HyTGraphConfig, HyTGraphSystem, OverlapWindow, RunResult, SystemKind};
use hytgraph::graph::{generators, DeviceAssignment};

const EPS: f64 = 1e-12;

fn overlap_config(window: OverlapWindow, max_iterations: u32) -> HyTGraphConfig {
    let mut cfg = SystemKind::HyTGraph.configure(HyTGraphConfig::default());
    cfg.num_devices = 4;
    cfg.device_assignment = DeviceAssignment::EdgeBalanced;
    cfg.threads = 1;
    cfg.overlap_exchange = true;
    cfg.overlap_window = window;
    cfg.max_iterations = max_iterations;
    cfg
}

fn run(window: OverlapWindow, max_iterations: u32) -> (RunResult<u32>, f64) {
    let g = generators::rmat(11, 10.0, 9, true);
    let cfg = overlap_config(window, max_iterations);
    let copy_latency = cfg.machine.pcie.copy_latency;
    let mut sys = HyTGraphSystem::new(g, cfg);
    (sys.run(Sssp::from_source(0)), copy_latency)
}

/// The core satellite claim: under the measured window, iteration `i`
/// never hides more than `min(its exchange makespan, iteration i+1's
/// actual analysis span)`, and the final iteration hides nothing.
#[test]
fn hidden_is_bounded_by_next_iterations_measured_analysis_span() {
    let (r, copy_latency) = run(OverlapWindow::Measured, u32::MAX);
    assert!(r.iterations >= 3, "need a multi-iteration run to exercise the window");
    let n = r.per_iteration.len();
    let mut any_hidden = false;
    for i in 0..n - 1 {
        let cur = &r.per_iteration[i];
        let next = &r.per_iteration[i + 1];
        let window = analysis_span(copy_latency, next.active_partitions, next.total_partitions);
        assert!(
            cur.exchange.hidden <= cur.exchange.time + EPS,
            "iteration {i} hid more exchange than it had"
        );
        assert!(
            cur.exchange.hidden <= window + EPS,
            "iteration {i} hid {} over a successor analysis span of only {window}",
            cur.exchange.hidden,
        );
        // Not just bounded: the window is used exactly.
        assert!((cur.exchange.hidden - cur.exchange.time.min(window)).abs() < EPS);
        any_hidden |= cur.exchange.hidden > 0.0;
    }
    assert!(any_hidden, "overlap hid nothing at all");
    // Natural drain: the final iteration has no successor analysis.
    assert_eq!(r.per_iteration[n - 1].exchange.hidden, 0.0);
    // Consistency: total time equals the serial run minus total hidden.
    let (serial, _) = {
        let g = generators::rmat(11, 10.0, 9, true);
        let mut cfg = overlap_config(OverlapWindow::Measured, u32::MAX);
        cfg.overlap_exchange = false;
        let mut sys = HyTGraphSystem::new(g, cfg);
        (sys.run(Sssp::from_source(0)), ())
    };
    let hidden: f64 = r.per_iteration.iter().map(|it| it.exchange.hidden).sum();
    assert_eq!(serial.values, r.values);
    assert!((serial.total_time - r.total_time - hidden).abs() < 1e-9);
}

/// The max-iterations cap is the other way a run can end; the capped
/// final iteration must hide nothing either (there is no iteration
/// `cap+1` whose analysis could absorb it).
#[test]
fn capped_final_iteration_hides_nothing() {
    let (full, _) = run(OverlapWindow::Measured, u32::MAX);
    let cap = full.iterations / 2;
    assert!(cap >= 2);
    let (r, _) = run(OverlapWindow::Measured, cap);
    assert_eq!(r.iterations, cap, "run must actually stop at the cap");
    let last = r.per_iteration.last().unwrap();
    assert!(last.exchange.time > 0.0, "capped mid-run iteration still exchanges");
    assert_eq!(last.exchange.hidden, 0.0);
    // Every non-final iteration matches the uncapped run's record
    // exactly — the fix only changes who counts as "final".
    for (a, b) in r.per_iteration[..cap as usize - 1]
        .iter()
        .zip(full.per_iteration[..cap as usize - 1].iter())
    {
        assert!((a.exchange.hidden - b.exchange.hidden).abs() < EPS);
        assert!((a.time - b.time).abs() < EPS);
    }
}

/// The legacy window is still reachable for differential suites, and it
/// demonstrably over-hides: a fixed five-copy credit regardless of how
/// little successor analysis actually exists.
#[test]
fn fixed_constant_window_reproduces_the_old_overreport() {
    let (legacy, copy_latency) = run(OverlapWindow::FixedConstant, u32::MAX);
    let (measured, _) = run(OverlapWindow::Measured, u32::MAX);
    // Same computation either way — the window only re-attributes time.
    assert_eq!(legacy.values, measured.values);
    assert_eq!(legacy.iterations, measured.iterations);

    let n = legacy.per_iteration.len();
    let fixed_window = ITERATION_OVERHEAD_COPIES * copy_latency;
    for it in &legacy.per_iteration[..n - 1] {
        // Exactly the historical rule: min(makespan, 5·copy_latency).
        assert!((it.exchange.hidden - it.exchange.time.min(fixed_window)).abs() < EPS);
    }
    assert_eq!(legacy.per_iteration[n - 1].exchange.hidden, 0.0);

    // The bug the fix removes: the legacy window credits more hidden
    // time than the successor analysis span can actually absorb.
    let legacy_hidden: f64 = legacy.per_iteration.iter().map(|it| it.exchange.hidden).sum();
    let measured_hidden: f64 = measured.per_iteration.iter().map(|it| it.exchange.hidden).sum();
    assert!(
        legacy_hidden > measured_hidden + EPS,
        "legacy window should over-hide: {legacy_hidden} vs {measured_hidden}"
    );
    let mut overcredits = 0u32;
    for i in 0..n - 1 {
        let next = &measured.per_iteration[i + 1];
        let span = analysis_span(copy_latency, next.active_partitions, next.total_partitions);
        if legacy.per_iteration[i].exchange.hidden > span + EPS {
            overcredits += 1;
        }
    }
    assert!(
        overcredits > 0,
        "expected at least one iteration where the fixed window exceeds the real span"
    );
}

/// The measured window's parts: the analysis span is the overlappable
/// share of the per-iteration overhead, scaled by the priced-partition
/// fraction, and degenerate inputs are safe.
#[test]
fn analysis_span_scales_with_active_fraction() {
    let lat = 30.0e-6;
    const { assert!(ANALYSIS_SPAN_COPIES < ITERATION_OVERHEAD_COPIES) };
    assert_eq!(analysis_span(lat, 8, 8), ANALYSIS_SPAN_COPIES * lat);
    assert!((analysis_span(lat, 2, 8) - ANALYSIS_SPAN_COPIES * lat * 0.25).abs() < EPS);
    assert_eq!(analysis_span(lat, 0, 8), 0.0);
    // Clamped, not extrapolated, if activity ever overcounts.
    assert_eq!(analysis_span(lat, 9, 8), ANALYSIS_SPAN_COPIES * lat);
    assert_eq!(analysis_span(lat, 3, 0), 0.0);
}

/// Overlap is pure attribution under every window: values and iteration
/// counts are bit-identical across off / measured / legacy.
#[test]
fn overlap_window_never_touches_values() {
    let g = generators::rmat(10, 8.0, 5, true);
    let mut results = Vec::new();
    for (overlap, window) in [
        (false, OverlapWindow::Measured),
        (true, OverlapWindow::Measured),
        (true, OverlapWindow::FixedConstant),
    ] {
        let mut cfg = overlap_config(window, u32::MAX);
        cfg.overlap_exchange = overlap;
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        let r = sys.run(Sssp::from_source(3));
        results.push((r.values, r.iterations));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
}
