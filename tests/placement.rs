//! Cost-driven placement, device-affine migration, and peer-served
//! zero-copy (ISSUE 8).
//!
//! Four families of claims:
//!
//! * **pricing dominance** — for every fabric drawn (mixed link
//!   generations, optional slow bridge), the cost-driven plan is never
//!   priced worse than the edge-balanced seed under the same route
//!   table, and a uniform fabric returns the seed bit-identically.
//! * **value transparency** — every assignment policy, device count and
//!   topology produces values and a convergence-iteration count
//!   bit-identical to the single-device run: placement is pricing-only.
//! * **the tentpole claim** — on a skewed power-law graph sharded over a
//!   mixed-generation D=8 ring (one device behind slow bridges on both
//!   sides), cost-driven placement strictly cuts both the priced
//!   exchange makespan and the total exchanged bytes.
//! * **migration differential** — a resident system with
//!   `affine_migration` on keeps producing values bit-identical to
//!   migration-off across repeated runs, while actually moving
//!   partitions and charging priced copies.

use hytgraph::algos::reference;
use hytgraph::core::{HyTGraphConfig, HyTGraphSystem, SystemKind, TopologyKind};
use hytgraph::graph::placement::{
    placement_score, plan_cost_driven, AffinityMatrix, PlacementPricer,
};
use hytgraph::graph::{generators, DeviceAssignment, DevicePlan, PartitionSet};
use hytgraph::prelude::*;
use hytgraph::sim::{Interconnect, LinkSpec, PcieModel};
use proptest::prelude::*;

/// Mixed-generation nominal bandwidths (bytes/s), scaled like the bench
/// proxies (SCALE_SHIFT = 10).
const GENERATIONS: [f64; 4] = [8.0e9, 25.0e9, 50.0e9, 100.0e9];

fn gen_spec(generation: usize) -> LinkSpec {
    LinkSpec::with_nominal_bw(GENERATIONS[generation % GENERATIONS.len()]).scaled(10)
}

/// HyTGraph preset on a D-device ring with deterministic host kernels.
fn ring_config(d: usize, assignment: DeviceAssignment) -> HyTGraphConfig {
    let mut cfg = SystemKind::HyTGraph.configure(HyTGraphConfig::default());
    cfg.num_devices = d;
    cfg.topology = TopologyKind::Ring;
    cfg.device_assignment = assignment;
    cfg.threads = 1;
    cfg
}

/// The skewed mixed-generation ring of the tentpole claim: the highest
/// device id is an old-generation card behind 2 GB/s bridges on *both*
/// sides, so anything placed there pays dearly to talk to anyone.
fn skewed_ring_config_d(d: usize, assignment: DeviceAssignment) -> HyTGraphConfig {
    let slow = LinkSpec::with_nominal_bw(2.0e9).scaled(10);
    let mut cfg = ring_config(d, assignment);
    cfg.link_overrides = match d {
        0 | 1 => Vec::new(),
        2 => vec![(0, 1, slow)],
        _ => vec![((d - 2) as u32, (d - 1) as u32, slow), ((d - 1) as u32, 0, slow)],
    };
    cfg
}

fn skewed_ring_config(assignment: DeviceAssignment) -> HyTGraphConfig {
    skewed_ring_config_d(8, assignment)
}

fn exchange_totals(r: &hytgraph::core::RunResult<u32>) -> (f64, u64) {
    let time: f64 = r.per_iteration.iter().map(|it| it.exchange.time).sum();
    (time, r.counters.exchange_bytes)
}

#[test]
fn cost_driven_strictly_cuts_exchange_on_the_skewed_mixed_ring() {
    let g = generators::power_law_preferential(1 << 14, 12.0, 2.2, 7, true);
    let src = (0..g.num_vertices()).max_by_key(|&v| g.out_degree(v)).unwrap();
    let run = |assignment| {
        let mut sys = HyTGraphSystem::new(g.clone(), skewed_ring_config(assignment));
        let holders = (0..sys.num_partitions() as u32)
            .map(|p| sys.device_plan().device_of(p))
            .collect::<std::collections::HashSet<_>>()
            .len();
        (sys.run(Sssp::from_source(src)), holders)
    };
    let (bal, bal_holders) = run(DeviceAssignment::EdgeBalanced);
    let (cost, cost_holders) = run(DeviceAssignment::CostDriven);
    assert_eq!(bal.values, cost.values, "placement changed computed values");
    assert_eq!(bal.iterations, cost.iterations);
    let (bal_time, bal_bytes) = exchange_totals(&bal);
    let (cost_time, cost_bytes) = exchange_totals(&cost);
    assert!(
        cost_time < bal_time,
        "cost-driven exchange {cost_time} not below edge-balanced {bal_time}"
    );
    assert!(
        cost_bytes < bal_bytes,
        "cost-driven bytes {cost_bytes} not below edge-balanced {bal_bytes} \
         (holders {cost_holders} vs {bal_holders})"
    );
    assert!(cost.total_time < bal.total_time, "makespan did not improve");
}

#[test]
fn cost_driven_on_a_uniform_fabric_is_edge_balanced() {
    // Host-only fabrics price every placement identically: the planner
    // must return the edge-balanced plan bit-identically, so the whole
    // run (values AND timeline) matches.
    let g = generators::rmat(11, 10.0, 3, true);
    let run = |assignment| {
        let mut cfg = SystemKind::HyTGraph.configure(HyTGraphConfig::default());
        cfg.num_devices = 4;
        cfg.device_assignment = assignment;
        cfg.threads = 1;
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        let plan: Vec<u32> =
            (0..sys.num_partitions() as u32).map(|p| sys.device_plan().device_of(p)).collect();
        (sys.run(Sssp::from_source(0)), plan)
    };
    let (bal, bal_plan) = run(DeviceAssignment::EdgeBalanced);
    let (cost, cost_plan) = run(DeviceAssignment::CostDriven);
    assert_eq!(bal_plan, cost_plan, "uniform fabric must keep the edge-balanced plan");
    assert_eq!(bal.values, cost.values);
    assert_eq!(bal.total_time, cost.total_time, "identical plans must price identically");
}

/// Build the same pricer the runner wires: all-gather makespan for the
/// broadcast term, the machine kernel for balance, routed transfer costs
/// for affinity.
fn system_pricer<'a>(
    ic: &'a Interconnect,
    exchange: &'a dyn Fn(&[u64], &[bool]) -> f64,
    compute: &'a dyn Fn(u64) -> f64,
    link: &'a dyn Fn(u32, u32, u64) -> f64,
) -> PlacementPricer<'a> {
    PlacementPricer { exchange, compute, link, uniform: ic.is_uniform_fabric() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under any mixed-generation ring (with or without a slow bridge),
    /// the cost-driven plan never prices worse than the edge-balanced
    /// seed under the same route table; uniform fabrics return the seed
    /// exactly.
    #[test]
    fn never_priced_worse_under_any_fabric(
        gens in proptest::collection::vec(0usize..4, 2..9),
        slow_sel in 0usize..10,
        scale in 4u32..7,
        seed in 0u64..1_000,
    ) {
        let d = gens.len();
        let g = generators::rmat(9, 8.0, seed, true);
        let parts = PartitionSet::build_count(&g, 1u32 << scale);
        let aff = AffinityMatrix::build(&g, &parts, 12);
        // A 2-device ring has a single link; larger rings have one per device.
        let nlinks = if d == 2 { 1 } else { d };
        let specs: Vec<LinkSpec> = (0..nlinks).map(|i| gen_spec(gens[i % d])).collect();
        let mut ic = Interconnect::ring_with_specs(d, PcieModel::pcie3(), &specs);
        if slow_sel < d {
            let (a, b) = (slow_sel as u32, ((slow_sel + 1) % d) as u32);
            ic = ic.with_link_spec(a, b, LinkSpec::with_nominal_bw(1.0e9).scaled(10));
        }
        let kernel = HyTGraphConfig::default().machine.kernel;
        let exchange = |pubd: &[u64], holders: &[bool]| ic.price_all_gather(pubd, holders).makespan;
        let compute = move |edges: u64| kernel.kernel_time(edges);
        let link = |s: u32, dst: u32, bytes: u64| ic.route_cost(s, dst, bytes);
        let pricer = system_pricer(&ic, &exchange, &compute, &link);
        let plan = plan_cost_driven(&parts, d as u32, &aff, &pricer);
        let balanced = DevicePlan::build(&parts, d as u32, DeviceAssignment::EdgeBalanced, 0);
        let s_plan = placement_score(&parts, &plan, &aff, &pricer);
        let s_bal = placement_score(&parts, &balanced, &aff, &pricer);
        prop_assert!(
            s_plan <= s_bal,
            "cost-driven {} priced above edge-balanced {} on D={} fabric",
            s_plan, s_bal, d
        );
        if pricer.uniform {
            for p in 0..parts.len() as u32 {
                prop_assert_eq!(plan.device_of(p), balanced.device_of(p));
            }
        }
    }

    /// Every assignment policy is value-transparent at every device
    /// count and topology: bit-identical values and iteration counts to
    /// the single-device run (threads = 1 for determinism).
    #[test]
    fn all_assignments_are_value_transparent(
        scale in 8u32..10,
        avg_deg in 4.0f64..10.0,
        seed in 0u64..1_000,
        host_only in 0usize..2,
    ) {
        let host_only = host_only == 1;
        let g = generators::rmat(scale, avg_deg, seed, true);
        let base = {
            let mut sys = HyTGraphSystem::new(
                g.clone(),
                ring_config(1, DeviceAssignment::EdgeBalanced),
            );
            let r = sys.run(Sssp::from_source(0));
            (r.values, r.iterations)
        };
        prop_assert_eq!(&base.0, &reference::dijkstra(&g, 0));
        for d in [2usize, 4, 8] {
            for assignment in [
                DeviceAssignment::EdgeBalanced,
                DeviceAssignment::HubAware,
                DeviceAssignment::CostDriven,
            ] {
                let cfg = if host_only {
                    let mut c = ring_config(d, assignment);
                    c.topology = TopologyKind::HostOnly;
                    c
                } else {
                    skewed_ring_config_d(d, assignment)
                };
                let mut sys = HyTGraphSystem::new(g.clone(), cfg);
                let r = sys.run(Sssp::from_source(0));
                prop_assert!(
                    r.values == base.0 && r.iterations == base.1,
                    "run diverged at D={} {:?}", d, assignment
                );
            }
        }
    }
}

#[test]
fn affine_migration_moves_partitions_and_keeps_values_bit_identical() {
    // Edge-balanced start on the skewed ring leaves chatty partitions on
    // the slow-bridged device; the migration planner must move at least
    // one off it over repeated resident runs, charging a priced copy,
    // while every run's values stay bit-identical to the migration-off
    // system.
    let g = generators::power_law_preferential(1 << 13, 12.0, 2.2, 11, true);
    let src = (0..g.num_vertices()).max_by_key(|&v| g.out_degree(v)).unwrap();
    let mut cfg_on = skewed_ring_config(DeviceAssignment::EdgeBalanced);
    cfg_on.affine_migration = true;
    let mut on = HyTGraphSystem::new(g.clone(), cfg_on);
    let mut off =
        HyTGraphSystem::new(g.clone(), skewed_ring_config(DeviceAssignment::EdgeBalanced));
    let oracle = reference::dijkstra(&g, src);
    for run in 0..3 {
        let r_on = on.run(Sssp::from_source(src));
        let r_off = off.run(Sssp::from_source(src));
        assert_eq!(r_on.values, r_off.values, "values diverged on run {run}");
        assert_eq!(r_on.values, oracle, "migrated system left the oracle on run {run}");
        assert_eq!(r_on.iterations, r_off.iterations);
    }
    assert!(
        !on.migrations().is_empty(),
        "the skewed ring never triggered a migration over 3 resident runs"
    );
    for m in on.migrations() {
        assert_ne!(m.from, m.to);
        assert!(m.copy_cost > 0.0, "migration must charge its priced bulk copy");
        assert!(on.warm_copy_of(m.partition).is_some());
    }
    assert!(off.migrations().is_empty(), "migration-off system must never move partitions");
}

#[test]
fn session_service_with_migration_stays_bit_identical_across_interleaved_runs() {
    // The resident session service inherits the evolving device plan
    // across cohorts. Interleaved traversal kinds over several rounds
    // must answer bit-identically whether migration is on or off — the
    // plan may move, the answers may not.
    use hytgraph::algos::AlgoBackend;
    use hytgraph::core::session::{QueryKind, SessionConfig};
    use hytgraph::core::SessionService;
    let g = generators::power_law_preferential(1 << 13, 12.0, 2.2, 11, true);
    let mk = |migrate: bool| {
        let mut cfg = skewed_ring_config(DeviceAssignment::EdgeBalanced);
        cfg.affine_migration = migrate;
        let sys = HyTGraphSystem::new(g.clone(), cfg);
        let scfg = SessionConfig { max_batch: 2, admission_budget: f64::INFINITY, max_queue: 16 };
        SessionService::new(sys, AlgoBackend, scfg)
    };
    let mut on = mk(true);
    let mut off = mk(false);
    for round in 0..3 {
        for kind in [QueryKind::Bfs(3), QueryKind::Sssp(17), QueryKind::Bfs(44)] {
            on.submit(kind.clone());
            off.submit(kind);
        }
        let a = on.drain();
        let b = off.drain();
        assert_eq!(a.len(), b.len());
        for (qa, qb) in a.iter().zip(&b) {
            assert_eq!(qa.output, qb.output, "outputs diverged in round {round}");
        }
    }
}

#[test]
fn peer_served_zero_copy_reports_bytes_and_stays_correct() {
    // After a migration leaves a warm copy, peer_zc may serve zero-copy
    // reads over the peer link. Engine choices (and thus the exact
    // iteration trajectory) may legally shift — the claim is
    // correctness-vs-oracle plus the new column actually reporting.
    let g = generators::power_law_preferential(1 << 13, 12.0, 2.2, 11, true);
    let src = (0..g.num_vertices()).max_by_key(|&v| g.out_degree(v)).unwrap();
    let mut cfg = skewed_ring_config(DeviceAssignment::EdgeBalanced);
    cfg.affine_migration = true;
    cfg.peer_zc = true;
    let mut sys = HyTGraphSystem::new(g.clone(), cfg);
    let oracle = reference::dijkstra(&g, src);
    let mut peer_bytes = 0u64;
    for _ in 0..3 {
        let r = sys.run(Sssp::from_source(src));
        assert_eq!(r.values, oracle);
        peer_bytes += r.per_iteration.iter().map(|it| it.exchange.peer_zc_bytes).sum::<u64>();
    }
    if sys.migrations().is_empty() {
        // No migration -> no warm copies -> the rung must stay silent.
        assert_eq!(peer_bytes, 0);
    }
    // Default config never engages the rung.
    let mut plain = HyTGraphSystem::new(g, skewed_ring_config(DeviceAssignment::EdgeBalanced));
    let r = plain.run(Sssp::from_source(src));
    assert!(r.per_iteration.iter().all(|it| it.exchange.peer_zc_bytes == 0));
}
