//! Property-based tests (proptest) over the core data structures and
//! system invariants, driven by random graphs and random frontiers.

use hytgraph::algos::reference;
use hytgraph::core::{HyTGraphConfig, HyTGraphSystem};
use hytgraph::graph::{hub_sort, io, Csr, EdgeList, Frontier, PartitionSet};
use hytgraph::prelude::*;
use hytgraph::sim::{Phase, SimTask, StreamSim};
use proptest::prelude::*;

/// Strategy: an arbitrary directed weighted graph with up to `max_v`
/// vertices and `max_e` edges (self-loops and duplicates allowed, as in
/// real crawls).
fn arb_graph(max_v: u32, max_e: usize) -> impl Strategy<Value = Csr> {
    (2..=max_v).prop_flat_map(move |nv| {
        proptest::collection::vec((0..nv, 0..nv, 1..64u32), 0..max_e).prop_map(move |edges| {
            let mut el = EdgeList::new(nv);
            for (s, d, w) in edges {
                el.push_weighted(s, d, w);
            }
            el.to_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_binary_io_round_trips(g in arb_graph(200, 2000)) {
        let bytes = io::to_bytes(&g);
        let back = io::from_bytes(&bytes).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn csr_edge_list_round_trips(g in arb_graph(150, 1500)) {
        let el = g.to_edge_list();
        prop_assert_eq!(el.to_csr(), g);
    }

    #[test]
    fn transpose_is_involutive_on_multisets(g in arb_graph(100, 800)) {
        let tt = g.transpose().transpose();
        for v in 0..g.num_vertices() {
            let mut a: Vec<_> = g.edges_of(v).collect();
            let mut b: Vec<_> = tt.edges_of(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn partitions_tile_the_graph(g in arb_graph(300, 4000), budget in 64u64..8192) {
        let ps = PartitionSet::build(&g, budget);
        let mut v_next = 0u32;
        let mut e_next = 0u64;
        for p in ps.partitions() {
            prop_assert_eq!(p.first_vertex, v_next);
            prop_assert_eq!(p.first_edge, e_next);
            v_next = p.end_vertex;
            e_next = p.end_edge;
        }
        prop_assert_eq!(v_next, g.num_vertices());
        prop_assert_eq!(e_next, g.num_edges());
    }

    #[test]
    fn hub_sort_is_a_permutation_preserving_structure(g in arb_graph(150, 2000)) {
        let r = hub_sort::hub_sort(&g);
        // perm/inv are mutually inverse.
        for v in 0..g.num_vertices() {
            prop_assert_eq!(r.to_old(r.to_new(v)), v);
        }
        // Edge and degree multisets preserved.
        prop_assert_eq!(r.graph.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() {
            prop_assert_eq!(r.graph.out_degree(r.to_new(v)), g.out_degree(v));
        }
        r.graph.validate().unwrap();
    }

    #[test]
    fn frontier_behaves_like_a_set(
        nv in 1u32..500,
        ops in proptest::collection::vec((0u32..500, any::<bool>()), 0..200),
    ) {
        let f = Frontier::new(nv);
        let mut model = std::collections::BTreeSet::new();
        for (v, insert) in ops {
            let v = v % nv;
            if insert {
                prop_assert_eq!(f.insert(v), model.insert(v));
            } else {
                prop_assert_eq!(f.remove(v), model.remove(&v));
            }
        }
        prop_assert_eq!(f.count(), model.len() as u64);
        let got: Vec<u32> = f.iter().collect();
        let want: Vec<u32> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn timeline_makespan_is_bounded(
        tasks in proptest::collection::vec(
            (0.0f64..2.0, 0.0f64..2.0, 0.0f64..2.0, any::<bool>()),
            1..20,
        ),
        streams in 1usize..6,
    ) {
        let sim_tasks: Vec<SimTask> = tasks
            .iter()
            .enumerate()
            .map(|(i, &(c, t, k, fused))| {
                if fused {
                    SimTask::zero_copy(format!("t{i}"), t, k)
                } else {
                    SimTask::compaction(format!("t{i}"), c, t, k)
                }
            })
            .collect();
        let tl = StreamSim::new(streams).schedule(&sim_tasks);
        // Lower bounds: busiest resource and longest single task.
        let longest = sim_tasks.iter().map(|t| t.serial_time()).fold(0.0, f64::max);
        prop_assert!(tl.makespan + 1e-9 >= tl.pcie_busy.max(tl.gpu_busy).max(tl.cpu_busy));
        prop_assert!(tl.makespan + 1e-9 >= longest);
        // Upper bound: full serialisation.
        let serial: f64 = sim_tasks.iter().map(|t| t.serial_time()).sum();
        prop_assert!(tl.makespan <= serial + 1e-9);
        // Phase conservation.
        let want_gpu: f64 = sim_tasks
            .iter()
            .flat_map(|t| &t.phases)
            .map(|p| match *p {
                Phase::Kernel(k) => k,
                Phase::Fused { kernel, .. } => kernel,
                _ => 0.0,
            })
            .sum();
        prop_assert!((tl.gpu_busy - want_gpu).abs() < 1e-9);
    }

    #[test]
    fn sssp_matches_dijkstra_on_random_graphs(g in arb_graph(120, 1200), src in 0u32..120) {
        let src = src % g.num_vertices();
        let oracle = reference::dijkstra(&g, src);
        let mut sys = HyTGraphSystem::new(g, HyTGraphConfig::default());
        let r = sys.run(Sssp::from_source(src));
        prop_assert_eq!(r.values, oracle);
    }

    #[test]
    fn bfs_depths_respect_edge_relaxation(g in arb_graph(120, 1200), src in 0u32..120) {
        let src = src % g.num_vertices();
        let mut sys = HyTGraphSystem::new(g.clone(), HyTGraphConfig::default());
        let r = sys.run(Bfs::from_source(src));
        let d = &r.values;
        prop_assert_eq!(d[src as usize], 0);
        // Triangle inequality on every edge: d[v] <= d[u] + 1.
        for u in 0..g.num_vertices() {
            if d[u as usize] == u32::MAX {
                continue;
            }
            for (v, _) in g.edges_of(u) {
                prop_assert!(d[v as usize] <= d[u as usize] + 1, "edge {u}->{v}");
            }
        }
    }

    #[test]
    fn cc_labels_are_fixpoints(g in arb_graph(100, 1000)) {
        let mut sys = HyTGraphSystem::new(g.clone(), HyTGraphConfig::default());
        let r = sys.run(Cc::new());
        let l = &r.values;
        for u in 0..g.num_vertices() {
            // Labels never exceed own id and never improve along any edge.
            prop_assert!(l[u as usize] <= u);
            for (v, _) in g.edges_of(u) {
                prop_assert!(l[v as usize] <= l[u as usize], "edge {u}->{v}");
            }
        }
    }

    #[test]
    fn transfer_counters_are_internally_consistent(g in arb_graph(200, 3000)) {
        let mut sys = HyTGraphSystem::new(g, HyTGraphConfig::default());
        let r = sys.run(Cc::new());
        let c = &r.counters;
        prop_assert_eq!(
            c.total_transfer_bytes(),
            c.explicit_bytes + c.zero_copy_bytes + c.um_bytes
        );
        // Per-iteration counters sum to the run totals.
        let mut sum = hytgraph::sim::TransferCounters::new();
        for it in &r.per_iteration {
            sum.merge(&it.counters);
        }
        prop_assert_eq!(sum, *c);
    }
}
