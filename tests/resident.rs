//! The resident-reuse contract: back-to-back [`HyTGraphSystem::run`]
//! calls on one resident system are bit-identical to runs on freshly
//! built systems.
//!
//! The session service keeps one partitioned system alive across an
//! arbitrary query stream, so everything that survives a `run` —
//! partitions, hub order, device plan, route tables, the resident
//! simulator and exchange scratch — must be either immutable or
//! restored before `run` returns. These tests hold the runner to that:
//! any drift between "fresh every time" and "resident, reused" is a
//! leak of per-run state into the struct.
//!
//! Bit-identity runs use `threads: 1` (deterministic host kernels), and
//! compare full [`RunResult`] content: values, iteration count, total
//! time, and the serialized per-iteration records (timings, engine
//! mixes, exchange breakdowns, counters).

use hytgraph::core::{HyTGraphConfig, HyTGraphSystem, RunResult, SystemKind};
use hytgraph::graph::{generators, Csr, DeviceAssignment};
use hytgraph::prelude::*;

fn config(devices: usize) -> HyTGraphConfig {
    let mut cfg = SystemKind::HyTGraph.configure(HyTGraphConfig::default());
    cfg.num_devices = devices;
    cfg.device_assignment = DeviceAssignment::EdgeBalanced;
    cfg.threads = 1;
    cfg
}

fn graph() -> Csr {
    generators::rmat(10, 10.0, 33, true)
}

/// Everything observable about a run, in comparable form.
fn fingerprint<V: std::fmt::Debug>(r: &RunResult<V>) -> (String, u32, f64, String) {
    (
        format!("{:?}", r.values),
        r.iterations,
        r.total_time,
        serde_json::to_string(&r.per_iteration).expect("per-iteration records serialize"),
    )
}

#[test]
fn repeat_runs_of_one_program_are_bit_identical() {
    for devices in [1usize, 4] {
        let mut resident = HyTGraphSystem::new(graph(), config(devices));
        let first = fingerprint(&resident.run(Sssp::from_source(0)));
        for round in 1..4 {
            let again = fingerprint(&resident.run(Sssp::from_source(0)));
            assert_eq!(first, again, "run {round} drifted on D={devices}");
        }
        // And the resident runs match a fresh system exactly.
        let mut fresh = HyTGraphSystem::new(graph(), config(devices));
        assert_eq!(first, fingerprint(&fresh.run(Sssp::from_source(0))), "D={devices}");
    }
}

#[test]
fn interleaved_programs_do_not_leak_state_between_runs() {
    // A/B/A: running a different program (different value type, different
    // frontier shape) in between must not perturb the repeat.
    let mut resident = HyTGraphSystem::new(graph(), config(4));
    let a1 = fingerprint(&resident.run(Bfs::from_source(7)));
    let b1 = fingerprint(&resident.run(PageRank::new()));
    let a2 = fingerprint(&resident.run(Bfs::from_source(7)));
    let b2 = fingerprint(&resident.run(PageRank::new()));
    assert_eq!(a1, a2, "BFS drifted after an interleaved PageRank");
    assert_eq!(b1, b2, "PageRank drifted after an interleaved BFS");
    // Different sources still answer independently on the same resident.
    let c = resident.run(Bfs::from_source(1));
    let mut fresh = HyTGraphSystem::new(graph(), config(4));
    assert_eq!(fingerprint(&c), fingerprint(&fresh.run(Bfs::from_source(1))));
}

#[test]
fn resident_reuse_holds_with_overlap_and_wide_values() {
    // The two stateful-looking features — the deferred overlap patch and
    // the multi-lane exchange scratch — must also leave no residue.
    let mut cfg = config(4);
    cfg.overlap_exchange = true;
    let mut resident = HyTGraphSystem::new(graph(), cfg.clone());
    let wide1 = fingerprint(&resident.run(MultiBfs::from_sources([0, 9, 3, 250])));
    let narrow = fingerprint(&resident.run(Sssp::from_source(0)));
    let wide2 = fingerprint(&resident.run(MultiBfs::from_sources([0, 9, 3, 250])));
    assert_eq!(wide1, wide2, "wide-value run drifted across resident reuse");
    let mut fresh = HyTGraphSystem::new(graph(), cfg);
    assert_eq!(narrow, fingerprint(&fresh.run(Sssp::from_source(0))));
}
