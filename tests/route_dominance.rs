//! Property suite for the sized, load-aware routing layer (ISSUE 5):
//! byte-size-aware breakpoint tables, the load-aware re-route/split
//! second pass, and cut-through forwarding.
//!
//! Three families of invariants:
//!
//! * **dominance** — the load-aware pass only ever applies
//!   strictly-improving moves, so for every topology, spec mix, ladder,
//!   and byte-size vector drawn, its makespan is at most the static
//!   sized-table makespan; the logical payload is invariant; and the
//!   makespan never undercuts the per-fragment chain-serialisation
//!   floor.
//! * **oracle** — with every new knob off (single-probe routing, no
//!   cut-through, static pass) the all-gather prices **bit-identically**
//!   to the PR 4 model, re-implemented here verbatim from the public
//!   route/queue API: exact `==` on the makespan, the per-queue busy
//!   vector, and every byte counter — no epsilon.
//! * **cut-through** — chunked forwarding only lowers the chain floor:
//!   wire occupancy and byte counters are unchanged, the makespan and
//!   critical path never grow, and `cut_through = None` reproduces the
//!   store-and-forward pricing exactly.

use hytgraph::sim::{
    Interconnect, LinkSpec, PcieModel, Route, TopologyKind, ROUTE_BREAKPOINT_LADDER,
    ROUTE_PROBE_BYTES,
};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// Nominal per-direction bandwidths of the link generations the mixed
/// fabrics draw from (x4 bridges up to NVLink4-class), bytes/s.
const GENERATIONS: [f64; 6] = [8.0e9, 16.0e9, 25.0e9, 50.0e9, 100.0e9, 200.0e9];

fn spec(generation: usize) -> LinkSpec {
    LinkSpec::with_nominal_bw(GENERATIONS[generation % GENERATIONS.len()])
}

/// A mixed-generation interconnect: a ring with per-link specs, with an
/// optional 1 GB/s slow bridge so host staging and detours win somewhere.
fn mixed_fabric(gens: &[usize], slow_sel: usize) -> Interconnect {
    let specs: Vec<LinkSpec> = gens.iter().map(|&g| spec(g)).collect();
    let mut ic = Interconnect::ring_with_specs(gens.len(), PcieModel::pcie3(), &specs);
    if slow_sel < gens.len() {
        let (a, b) = (slow_sel as u32, ((slow_sel + 1) % gens.len()) as u32);
        ic = ic.with_link_spec(a, b, LinkSpec::with_nominal_bw(1.0e9));
    }
    ic
}

/// The PR 4 all-gather pricing, re-implemented verbatim from the public
/// API: per-pair single-probe routes, per-direction queue occupancy,
/// shared host upload per source + aggregated download per destination
/// (ascending device order, upload before download), makespan = busiest
/// queue floored by the longest store-and-forward chain.
#[allow(clippy::type_complexity)]
fn pr4_oracle(
    ic: &Interconnect,
    owned: &[u64],
    participates: &[bool],
) -> (f64, f64, Vec<f64>, u64, u64, u64) {
    let nd = owned.len();
    let mut per_queue = vec![0.0f64; ic.num_queues()];
    let mut critical = 0.0f64;
    let (mut host_bytes, mut peer_bytes, mut fwd_bytes) = (0u64, 0u64, 0u64);
    let holders = participates.iter().filter(|&&p| p).count();
    let total: u64 = owned.iter().zip(participates).filter(|&(_, &p)| p).map(|(&o, _)| o).sum();
    if holders <= 1 || total == 0 {
        return (0.0, 0.0, per_queue, 0, 0, 0);
    }
    let occupy = |q: usize, t: f64, acc: &mut Vec<f64>| acc[q] += t;
    let mut host_up = vec![0u64; nd];
    let mut host_down = vec![0u64; nd];
    for s in (0..nd as u32).filter(|&s| participates[s as usize]) {
        let b = owned[s as usize];
        let mut staged = false;
        for d in (0..nd as u32).filter(|&d| d != s && participates[d as usize]) {
            match ic.route(s, d, ROUTE_PROBE_BYTES) {
                Route::Direct(link) => {
                    if b > 0 {
                        let (a, _) = ic.links()[*link].endpoints.unwrap();
                        occupy(ic.queue(*link, s != a), ic.transfer_time(*link, b), &mut per_queue);
                        peer_bytes += b;
                    }
                }
                Route::Forwarded(hops) => {
                    if b > 0 {
                        let mut cur = s;
                        let mut path_time = 0.0;
                        for &link in hops {
                            path_time += ic.transfer_time(link, b);
                            let (a, bb) = ic.links()[link].endpoints.unwrap();
                            occupy(
                                ic.queue(link, cur != a),
                                ic.transfer_time(link, b),
                                &mut per_queue,
                            );
                            cur = if cur == a { bb } else { a };
                            peer_bytes += b;
                        }
                        fwd_bytes += b * (hops.len() as u64 - 1);
                        critical = critical.max(path_time);
                    }
                }
                Route::HostStaged => {
                    staged = true;
                    host_down[d as usize] += b;
                }
            }
        }
        if staged {
            host_up[s as usize] = b;
        }
    }
    let host_q = ic.queue(ic.host_link(), false);
    for d in 0..nd {
        for b in [host_up[d], host_down[d]] {
            if b > 0 {
                occupy(host_q, ic.transfer_time(ic.host_link(), b), &mut per_queue);
                host_bytes += b;
            }
        }
    }
    let makespan = per_queue.iter().fold(critical, |a, &b| a.max(b));
    (makespan, critical, per_queue, host_bytes, peer_bytes, fwd_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn load_aware_is_never_worse_than_the_static_sized_table(
        gens in proptest::collection::vec(0usize..6, 3..9),
        owned_seed in proptest::collection::vec(0u64..2_000_000, 3..9),
        participates_bits in proptest::collection::vec(any::<bool>(), 3..9),
        slow_sel in 0usize..16,
        ladder in any::<bool>(),
    ) {
        let nd = gens.len();
        let owned: Vec<u64> = owned_seed.iter().cycle().take(nd).copied().collect();
        let mut participates: Vec<bool> =
            participates_bits.iter().cycle().take(nd).copied().collect();
        participates[0] = true;
        let mut ic = mixed_fabric(&gens, slow_sel);
        if ladder {
            ic = ic.with_route_breakpoints(&ROUTE_BREAKPOINT_LADDER);
        }
        let stat = ic.price_all_gather(&owned, &participates);
        let load = ic.price_all_gather_load_aware(&owned, &participates);
        // Dominance: the greedy applies only strictly-improving moves.
        prop_assert!(
            load.makespan <= stat.makespan + EPS,
            "load-aware {} > static {}", load.makespan, stat.makespan
        );
        // The logical payload is routing-invariant; only occupancy moves.
        prop_assert_eq!(load.payload_bytes, stat.payload_bytes);
        // The static pass never re-routes or splits.
        prop_assert_eq!(stat.rerouted_bytes, 0);
        prop_assert_eq!(stat.split_bytes, 0);
        // Both reports respect the per-fragment chain floor.
        prop_assert!(stat.makespan >= stat.critical_path - EPS);
        prop_assert!(load.makespan >= load.critical_path - EPS);
        // Class totals still tile the per-link busy vector.
        let sum: f64 = load.per_link_busy.iter().sum();
        prop_assert!((sum - load.host_time - load.peer_time).abs() < EPS);
    }

    #[test]
    fn sized_routes_are_cheapest_at_every_rung(
        gens in proptest::collection::vec(0usize..6, 3..9),
        slow_sel in 0usize..16,
    ) {
        let ic = mixed_fabric(&gens, slow_sel).with_route_breakpoints(&ROUTE_BREAKPOINT_LADDER);
        let nd = gens.len();
        for &probe in ic.route_breakpoints() {
            let host_cost = 2.0 * ic.transfer_time(ic.host_link(), probe);
            for s in 0..nd as u32 {
                for d in (0..nd as u32).filter(|&d| d != s) {
                    // Host staging is always available, so no rung's
                    // route may price above it at that rung's probe.
                    let cost = ic.route_cost(s, d, probe);
                    prop_assert!(
                        cost <= host_cost + EPS,
                        "{s}->{d} at {probe}B: {cost} > host {host_cost}"
                    );
                }
            }
        }
    }

    #[test]
    fn knobs_off_price_bit_identically_to_the_pr4_oracle(
        gens in proptest::collection::vec(0usize..6, 3..9),
        owned_seed in proptest::collection::vec(0u64..2_000_000, 3..9),
        participates_bits in proptest::collection::vec(any::<bool>(), 3..9),
        slow_sel in 0usize..16,
        kind_idx in 0usize..3,
    ) {
        let nd = gens.len();
        let owned: Vec<u64> = owned_seed.iter().cycle().take(nd).copied().collect();
        let mut participates: Vec<bool> =
            participates_bits.iter().cycle().take(nd).copied().collect();
        participates[0] = true;
        // Both a mixed-generation ring (with an optional slow bridge)
        // and the uniform named shapes must reproduce PR 4 exactly.
        let ics = [
            mixed_fabric(&gens, slow_sel),
            Interconnect::build(TopologyKind::ALL[kind_idx], nd, PcieModel::pcie3(), spec(gens[0])),
        ];
        for ic in ics {
            let r = ic.price_all_gather(&owned, &participates);
            let (makespan, critical, per_queue, host_b, peer_b, fwd_b) =
                pr4_oracle(&ic, &owned, &participates);
            // Bit-identical: exact equality, no epsilon.
            prop_assert_eq!(r.makespan, makespan);
            prop_assert_eq!(r.critical_path, critical);
            prop_assert_eq!(&r.per_queue_busy, &per_queue);
            prop_assert_eq!(r.host_bytes, host_b);
            prop_assert_eq!(r.peer_bytes, peer_b);
            prop_assert_eq!(r.forwarded_bytes, fwd_b);
            prop_assert_eq!(r.rerouted_bytes, 0);
            prop_assert_eq!(r.split_bytes, 0);
        }
    }

    #[test]
    fn cut_through_only_lowers_the_chain_floor(
        gens in proptest::collection::vec(0usize..6, 3..9),
        owned_seed in proptest::collection::vec(0u64..2_000_000, 3..9),
        chunk_kb in 1u64..512,
    ) {
        let nd = gens.len();
        let owned: Vec<u64> = owned_seed.iter().cycle().take(nd).copied().collect();
        let participates = vec![true; nd];
        let plain: Vec<LinkSpec> = gens.iter().map(|&g| spec(g)).collect();
        let chunked: Vec<LinkSpec> =
            plain.iter().map(|s| s.with_cut_through(chunk_kb << 10)).collect();
        let saf = Interconnect::ring_with_specs(nd, PcieModel::pcie3(), &plain)
            .price_all_gather(&owned, &participates);
        let ct = Interconnect::ring_with_specs(nd, PcieModel::pcie3(), &chunked)
            .price_all_gather(&owned, &participates);
        // Same routes, same bytes on every wire: occupancy and counters
        // are bit-identical; only the serialisation floor may shrink.
        prop_assert_eq!(&ct.per_queue_busy, &saf.per_queue_busy);
        prop_assert_eq!(&ct.per_link_busy, &saf.per_link_busy);
        prop_assert_eq!(ct.peer_bytes, saf.peer_bytes);
        prop_assert_eq!(ct.host_bytes, saf.host_bytes);
        prop_assert_eq!(ct.forwarded_bytes, saf.forwarded_bytes);
        prop_assert_eq!(ct.payload_bytes, saf.payload_bytes);
        prop_assert!(ct.critical_path <= saf.critical_path + EPS);
        prop_assert!(ct.makespan <= saf.makespan + EPS);
        prop_assert!(ct.makespan >= ct.critical_path - EPS);
    }
}

#[test]
fn load_aware_system_runs_are_value_transparent() {
    // End-to-end: the full runner with ladder + load-aware + cut-through
    // computes bit-identical values and iterations to the all-defaults
    // run — routing is pricing-only — while the exchange never grows.
    use hytgraph::prelude::*;
    let g = hytgraph::graph::generators::power_law_preferential(1 << 12, 8.0, 2.2, 11, true);
    let run = |smart: bool| {
        let mut cfg = HyTGraphConfig {
            num_devices: 8,
            topology: TopologyKind::Ring,
            threads: 1,
            ..HyTGraphConfig::default()
        };
        if smart {
            let shift = hytgraph::core::config::SCALE_SHIFT;
            cfg.route_breakpoints =
                ROUTE_BREAKPOINT_LADDER.iter().map(|&b| (b >> shift).max(1)).collect();
            cfg.load_aware_exchange = true;
            cfg.cut_through = Some(256);
        }
        let mut sys = HyTGraphSystem::new(g.clone(), cfg);
        let r = sys.run(Bfs::from_source(0));
        let exchange: f64 = r.per_iteration.iter().map(|it| it.exchange.time).sum();
        (r.values, r.iterations, exchange)
    };
    let (v0, i0, x0) = run(false);
    let (v1, i1, x1) = run(true);
    assert_eq!(v0, v1, "routing must never change computed values");
    assert_eq!(i0, i1);
    assert!(x1 <= x0 + 1e-12, "smart routing must never grow the exchange: {x1} vs {x0}");
}
