//! The multi-tenant session layer, end to end: MS-BFS-style coalescing
//! bit-identity, exchange-byte amortisation, and the priced admission
//! pipeline over a resident multi-device system.
//!
//! The coalescing contract is the strongest claim: for **every** device
//! count and topology, lane `k` of a batched [`MultiBfs`]/[`MultiSssp`]
//! run equals the serial run from source `k` bit-for-bit. This composes
//! with the sharding contract (`tests/multi_gpu.rs`: serial runs are
//! value-identical across `D` and topology), so lanes are checked
//! against the `D = 1` serial baseline and, on a fixed graph, against
//! same-`D`/same-topology serial runs directly.
//!
//! What batching is *for* is the exchange: one routed all-gather per
//! iteration carrying `4·B`-byte records instead of `B` separate
//! all-gathers of 8-byte records. On a skewed multi-device graph that
//! must strictly cut total exchanged payload bytes — asserted here and
//! promoted to a `repro check` claim.

use hytgraph::algos::{lane_values, reference};
use hytgraph::core::{HyTGraphConfig, HyTGraphSystem, SystemKind, TopologyKind};
use hytgraph::graph::{generators, Csr, DeviceAssignment, EdgeList};
use hytgraph::prelude::*;
use proptest::prelude::*;

fn cfg(d: usize, topo: TopologyKind) -> HyTGraphConfig {
    let mut c = SystemKind::HyTGraph.configure(HyTGraphConfig::default());
    c.num_devices = d;
    c.device_assignment = DeviceAssignment::EdgeBalanced;
    c.topology = topo;
    c.threads = 1;
    c
}

/// Batched BFS lanes plus the run's logical exchange payload.
fn batched_bfs<const B: usize>(g: &Csr, c: HyTGraphConfig, srcs: [u32; B]) -> (Vec<Vec<u32>>, u64) {
    let mut sys = HyTGraphSystem::new(g.clone(), c);
    let r = sys.run(MultiBfs::from_sources(srcs));
    ((0..B).map(|k| lane_values(&r.values, k)).collect(), r.counters.exchange_bytes)
}

fn serial_bfs(g: &Csr, c: HyTGraphConfig, s: u32) -> (Vec<u32>, u64) {
    let mut sys = HyTGraphSystem::new(g.clone(), c);
    let r = sys.run(Bfs::from_source(s));
    (r.values, r.counters.exchange_bytes)
}

/// Strategy: an arbitrary directed graph (self-loops and duplicate edges
/// allowed) with up to `max_v` vertices and `max_e` edges.
fn arb_graph(max_v: u32, max_e: usize) -> impl Strategy<Value = Csr> {
    (2..=max_v).prop_flat_map(move |nv| {
        proptest::collection::vec((0..nv, 0..nv, 1..64u32), 0..max_e).prop_map(move |edges| {
            let mut el = EdgeList::new(nv);
            for (s, d, w) in edges {
                el.push_weighted(s, d, w);
            }
            el.to_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// ISSUE satellite: the coalesced multi-source run is bit-identical
    /// to per-source serial runs for every `D ∈ {1, 2, 4, 8}` and every
    /// topology.
    #[test]
    fn coalesced_lanes_bit_identical_across_devices_and_topologies(
        g in arb_graph(96, 700),
        picks in proptest::collection::vec(any::<u32>(), 4..5),
    ) {
        let nv = g.num_vertices();
        let srcs = [picks[0] % nv, picks[1] % nv, picks[2] % nv, picks[3] % nv];
        let serial: Vec<Vec<u32>> = srcs
            .iter()
            .map(|&s| serial_bfs(&g, cfg(1, TopologyKind::HostOnly), s).0)
            .collect();
        for d in [1usize, 2, 4, 8] {
            for topo in [TopologyKind::HostOnly, TopologyKind::Ring, TopologyKind::AllToAll] {
                let (lanes, _) = batched_bfs::<4>(&g, cfg(d, topo), srcs);
                for (k, lane) in lanes.iter().enumerate() {
                    prop_assert!(
                        lane == &serial[k],
                        "lane {} diverged at D={} {:?}",
                        k,
                        d,
                        topo
                    );
                }
            }
        }
    }
}

/// The same sweep at every supported width, for both traversal kinds,
/// with the serial baseline run at the *same* device count and topology.
#[test]
fn every_width_matches_same_config_serial_runs() {
    let g = generators::rmat(10, 8.0, 77, true);
    let srcs8 = [0u32, 3, 11, 42, 97, 150, 513, 800];
    for d in [1usize, 2, 4, 8] {
        for topo in [TopologyKind::HostOnly, TopologyKind::Ring, TopologyKind::AllToAll] {
            let serial: Vec<Vec<u32>> =
                srcs8.iter().map(|&s| serial_bfs(&g, cfg(d, topo), s).0).collect();
            let (w2, _) = batched_bfs::<2>(&g, cfg(d, topo), [srcs8[0], srcs8[1]]);
            let (w4, _) =
                batched_bfs::<4>(&g, cfg(d, topo), [srcs8[0], srcs8[1], srcs8[2], srcs8[3]]);
            let (w8, _) = batched_bfs::<8>(&g, cfg(d, topo), srcs8);
            for k in 0..2 {
                assert_eq!(w2[k], serial[k], "width 2 lane {k} at D={d} {topo:?}");
            }
            for k in 0..4 {
                assert_eq!(w4[k], serial[k], "width 4 lane {k} at D={d} {topo:?}");
            }
            for k in 0..8 {
                assert_eq!(w8[k], serial[k], "width 8 lane {k} at D={d} {topo:?}");
            }
        }
    }
    // Weighted counterpart against the sequential oracle.
    let mut sys = HyTGraphSystem::new(g.clone(), cfg(4, TopologyKind::Ring));
    let r = sys.run(MultiSssp::from_sources([srcs8[0], srcs8[4], srcs8[6], srcs8[7]]));
    for (k, &s) in [srcs8[0], srcs8[4], srcs8[6], srcs8[7]].iter().enumerate() {
        assert_eq!(lane_values(&r.values, k), reference::dijkstra(&g, s), "SSSP lane {k}");
    }
}

/// The top-degree vertices of `g` — the natural anchors of a concurrent
/// analytics workload (queries land on popular entities), and the
/// sources whose frontiers overlap the most.
fn hub_sources<const B: usize>(g: &Csr) -> [u32; B] {
    let mut by_degree: Vec<(u64, u32)> =
        (0..g.num_vertices()).map(|v| (g.out_degree(v), v)).collect();
    by_degree.sort_unstable_by(|a, b| b.cmp(a));
    let mut out = [0u32; B];
    for (slot, &(_, v)) in out.iter_mut().zip(by_degree.iter()) {
        *slot = v;
    }
    out
}

/// ISSUE satellite: on a skewed graph sharded over 8 devices, batching 8
/// traversals strictly reduces total exchanged payload bytes versus the
/// 8 serial runs it replaces.
///
/// The saving needs temporal overlap: a batched record costs
/// `4 + 4·B` bytes wherever a serial run's costs `4 + 4`, so it wins
/// only when several lanes update a vertex in the *same* iteration.
/// Hub-anchored traversals on a skewed graph overlap almost fully
/// (every hub reaches most of the graph in the same two or three hops);
/// traversals from arbitrary low-degree vertices need not, which is why
/// the service coalesces opportunistically instead of promising a
/// universal byte reduction.
#[test]
fn batching_strictly_cuts_exchange_bytes_on_a_skewed_graph() {
    let g = generators::power_law_preferential(1 << 12, 12.0, 2.2, 7, false);
    let srcs: [u32; 8] = hub_sources(&g);
    let c = cfg(8, TopologyKind::Ring);
    let (lanes, batched_bytes) = batched_bfs::<8>(&g, c.clone(), srcs);
    let mut serial_bytes = 0u64;
    for (k, &s) in srcs.iter().enumerate() {
        let (values, bytes) = serial_bfs(&g, c.clone(), s);
        assert_eq!(lanes[k], values, "lane {k}");
        serial_bytes += bytes;
    }
    assert!(batched_bytes > 0, "an 8-device run must exchange something");
    assert!(
        batched_bytes < serial_bytes,
        "batching should amortise the exchange: batched {batched_bytes} \
         vs serial total {serial_bytes}"
    );
}

/// The full service pipeline on a resident multi-device system: priced
/// admission, coalesced execution, per-request demux and accounting.
#[test]
fn session_service_serves_a_mixed_stream_on_a_multi_device_system() {
    let g = generators::rmat(9, 8.0, 21, true);
    let sys = HyTGraphSystem::new(g.clone(), cfg(4, TopologyKind::Ring));
    let scfg = SessionConfig { max_batch: 4, admission_budget: 1e12, max_queue: 16 };
    let mut svc = SessionService::new(sys, AlgoBackend, scfg);

    let sources = [3u32, 17, 44, 120];
    for &v in &sources {
        assert!(matches!(svc.submit(QueryKind::Bfs(v)), Admission::Admitted { .. }));
    }
    svc.advance_clock(1.0);
    svc.submit(QueryKind::PageRank);
    let done = svc.drain();
    assert_eq!(done.len(), 5);

    // The four BFS queries rode one width-4 cohort; each answer matches
    // a fresh serial system bit-for-bit.
    for (q, &v) in done[..4].iter().zip(sources.iter()) {
        assert_eq!(q.kind, QueryKind::Bfs(v));
        assert_eq!(q.stats.batch_width, 4);
        assert_eq!(q.stats.batch, 1);
        assert_eq!(q.stats.wait, 1.0, "head cohort starts after the arrival gap");
        let serial = serial_bfs(&g, cfg(4, TopologyKind::Ring), v).0;
        assert_eq!(q.output, QueryOutput::Distances(serial), "source {v}");
    }
    // The cohort's exchange share is a strict per-request saving over
    // running alone.
    let solo = {
        let sys = HyTGraphSystem::new(g.clone(), cfg(4, TopologyKind::Ring));
        let mut solo_svc = SessionService::new(sys, AlgoBackend, scfg);
        solo_svc.submit(QueryKind::Bfs(sources[0]));
        solo_svc.drain()[0].stats.exchange_share_bytes
    };
    assert!(done[0].stats.exchange_share_bytes < solo);

    // PageRank ran alone afterwards, on the session clock.
    let pr = &done[4];
    assert_eq!(pr.kind, QueryKind::PageRank);
    assert_eq!(pr.stats.batch_width, 1);
    assert_eq!(pr.stats.batch, 2);
    assert!(pr.stats.start >= done[0].stats.start + done[0].stats.service);

    let stats = svc.stats();
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.batches, 2);
    assert_eq!((stats.admitted_now, stats.waiting_now), (0, 0));
}

/// Admission control with real quotes: a tight budget queues, a full
/// queue rejects with the quote attached, and draining promotes FIFO.
#[test]
fn real_quotes_drive_admission_queueing_and_rejection() {
    let g = generators::rmat(9, 8.0, 21, true);
    let sys = HyTGraphSystem::new(g.clone(), cfg(2, TopologyKind::Ring));
    let mut svc = SessionService::new(
        sys,
        AlgoBackend,
        SessionConfig { max_batch: 2, admission_budget: f64::INFINITY, max_queue: 1 },
    );
    let bfs_quote = svc.quote(&QueryKind::Bfs(0));
    assert!(bfs_quote.sweep_rtt > 0.0);
    // SSSP ships weights (8 edge bytes vs 4): strictly dearer. HyperBall's
    // wide values only surface where compaction would win, so its quote is
    // never *cheaper* than BFS at the same edge bytes.
    assert!(svc.quote(&QueryKind::Sssp(0)).sweep_rtt > bfs_quote.sweep_rtt);
    assert!(svc.quote(&QueryKind::HyperBall).sweep_rtt >= bfs_quote.sweep_rtt);

    // Budget admits exactly two BFS quotes.
    let sys = HyTGraphSystem::new(g, cfg(2, TopologyKind::Ring));
    let mut svc = SessionService::new(
        sys,
        AlgoBackend,
        SessionConfig {
            max_batch: 2,
            admission_budget: 2.0 * bfs_quote.sweep_rtt + 1e-9,
            max_queue: 1,
        },
    );
    assert!(matches!(svc.submit(QueryKind::Bfs(1)), Admission::Admitted { .. }));
    assert!(matches!(svc.submit(QueryKind::Bfs(2)), Admission::Admitted { .. }));
    // Over budget → queued; queue full → rejected, quoting the price.
    assert!(matches!(svc.submit(QueryKind::Bfs(3)), Admission::Queued { position: 0, .. }));
    match svc.submit(QueryKind::Bfs(4)) {
        Admission::Rejected { reason, quote } => {
            assert_eq!(reason, hytgraph::core::session::RejectReason::QueueFull);
            assert_eq!(quote.sweep_rtt, bfs_quote.sweep_rtt);
        }
        a => panic!("expected a queue-full rejection, got {a:?}"),
    }
    // Draining serves all three accepted queries and empties the queue.
    let done = svc.drain();
    assert_eq!(done.len(), 3);
    assert_eq!(done[0].stats.batch_width, 2);
    assert_eq!(done[2].stats.batch_width, 1);
    assert_eq!(svc.stats().waiting_now, 0);
    assert_eq!(svc.stats().admitted_cost, 0.0);

    // A single query dearer than the whole budget is refused outright,
    // not parked in the queue it could never leave.
    let g = generators::rmat(9, 8.0, 21, true);
    let sys = HyTGraphSystem::new(g, cfg(2, TopologyKind::Ring));
    let mut tight = SessionService::new(
        sys,
        AlgoBackend,
        SessionConfig { max_batch: 2, admission_budget: 0.5 * bfs_quote.sweep_rtt, max_queue: 4 },
    );
    match tight.submit(QueryKind::Bfs(0)) {
        Admission::Rejected { reason, quote } => {
            assert_eq!(reason, hytgraph::core::session::RejectReason::OverBudget);
            assert_eq!(quote.sweep_rtt, bfs_quote.sweep_rtt);
        }
        a => panic!("expected an over-budget rejection, got {a:?}"),
    }
    assert!(tight.run_next().is_none());
}

/// ISSUE satellite: fairness of mutation requests in mixed streams.
/// A [`QueryKind::Mutate`] is a FIFO barrier — it must never overtake a
/// query admitted before it, and (the starvation side) no query admitted
/// after it may be pulled into an earlier cohort past it: the number of
/// cohorts that run before the mutation is bounded by the number of
/// earlier admissions. It also always runs alone.
mod mutation_fairness {
    use super::*;
    use hytgraph::graph::MutationBatch;
    use std::collections::BTreeSet;

    /// Scripted stream entry: selector plus raw operands, folded into
    /// valid queries/batches against a shadow edge set at build time.
    type Cmd = (u8, u32, u32, u32);

    fn check_stream(script: Vec<Cmd>) {
        let g = generators::rmat(8, 6.0, 21, true);
        let nv = g.num_vertices();
        let mut present: BTreeSet<(u32, u32)> = BTreeSet::new();
        for v in 0..nv {
            for &d in g.neighbors(v) {
                present.insert((v, d));
            }
        }
        let mut pool: Vec<(u32, u32)> = present.iter().copied().collect();
        let sys = HyTGraphSystem::new(g, cfg(2, TopologyKind::Ring));
        let scfg = SessionConfig { max_batch: 4, admission_budget: 1e12, max_queue: 1024 };
        let mut svc = SessionService::new(sys, AlgoBackend, scfg);

        let mut expected_ops: Vec<usize> = Vec::new();
        for (sel, a, b, w) in script {
            let kind = match sel % 3 {
                0 => QueryKind::Bfs(a % nv),
                1 => QueryKind::Sssp(a % nv),
                _ => {
                    let mut batch = MutationBatch::new();
                    if b % 2 == 0 && !pool.is_empty() {
                        // Delete an edge the shadow still holds: at least
                        // one live occurrence is guaranteed.
                        let (s, d) = pool.swap_remove(a as usize % pool.len());
                        present.remove(&(s, d));
                        batch.delete(s, d);
                    } else {
                        let (s, d) = (a % nv, b % nv);
                        if present.insert((s, d)) {
                            pool.push((s, d));
                        }
                        batch.insert_weighted(s, d, w);
                    }
                    expected_ops.push(batch.len());
                    QueryKind::Mutate(batch)
                }
            };
            assert!(matches!(svc.submit(kind), Admission::Admitted { .. }));
        }
        let done = svc.drain();

        let mut mutations: Vec<(u64, u64)> = Vec::new(); // (id, batch)
        for q in &done {
            if let QueryKind::Mutate(_) = q.kind {
                assert_eq!(q.stats.batch_width, 1, "a mutation must run alone");
                mutations.push((q.id.0, q.stats.batch));
                match &q.output {
                    QueryOutput::Mutation(m) => {
                        assert!(m.error.is_none(), "scripted ops are valid: {:?}", m.error);
                    }
                    o => panic!("expected a mutation outcome, got {o:?}"),
                }
            }
        }
        let applied: Vec<usize> = done
            .iter()
            .filter_map(|q| match (&q.kind, &q.output) {
                (QueryKind::Mutate(_), QueryOutput::Mutation(m)) => Some(m.applied),
                _ => None,
            })
            .collect();
        assert_eq!(applied, expected_ops, "every scripted op must apply");

        for &(mid, mbatch) in &mutations {
            let earlier = done.iter().filter(|q| q.id.0 < mid).count() as u64;
            for q in &done {
                if q.id.0 < mid {
                    assert!(
                        q.stats.batch < mbatch,
                        "mutation {mid} (batch {mbatch}) overtook query {} (batch {})",
                        q.id.0,
                        q.stats.batch
                    );
                } else if q.id.0 > mid {
                    assert!(
                        q.stats.batch > mbatch,
                        "query {} (batch {}) jumped the mutation barrier {mid} (batch {mbatch})",
                        q.id.0,
                        q.stats.batch
                    );
                }
            }
            // Starvation bound: every cohort ahead of the mutation holds
            // at least one earlier-admitted query.
            assert!(mbatch <= earlier + 1, "mutation {mid} starved: batch {mbatch} of {earlier}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn mutations_never_overtake_and_never_starve(
            script in proptest::collection::vec((0u8..6, any::<u32>(), any::<u32>(), 1u32..32), 4..20),
        ) {
            check_stream(script);
        }
    }

    #[test]
    fn coalesced_cohort_does_not_reach_past_a_mutation() {
        // Deterministic spot check of the exact barrier shape: four
        // coalescible BFS queries straddle a mutation; the first cohort
        // may only take the two in front of it.
        check_stream(vec![(0, 1, 0, 1), (0, 2, 0, 1), (2, 3, 1, 5), (0, 4, 0, 1), (0, 5, 0, 1)]);
    }
}
