//! Invariant tests for the stream timeline simulators.
//!
//! The discrete-event schedulers back every runtime number the harness
//! reports, so their physical invariants get property coverage:
//!
//! * the makespan is never shorter than any single resource's busy time;
//! * exclusive resources (the PCIe bus, each GPU's kernel engine, the
//!   host compaction pool) never hold two overlapping spans;
//! * fused zero-copy phases occupy bus and GPU for the *same* interval;
//! * the multi-device scheduler degenerates to `StreamSim` at `D = 1` and
//!   keeps bus exclusivity *across* devices.

use hytgraph::sim::{
    Interconnect, LinkSpec, MultiGpuSim, PcieModel, Phase, PhaseSpan, Resource, SimTask, StreamSim,
    Timeline, TopologyKind,
};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// Strategy: one task of a random engine shape with millisecond-scale
/// durations (integer tenths, so sums stay exactly representable).
fn arb_task() -> impl Strategy<Value = SimTask> {
    (0u8..4, 0u64..40, 0u64..40, 0u64..40).prop_map(|(shape, a, b, c)| {
        let (a, b, c) = (a as f64 / 10.0, b as f64 / 10.0, c as f64 / 10.0);
        match shape {
            0 => SimTask::explicit("e", a, b),
            1 => SimTask::compaction("c", a, b, c),
            2 => SimTask::zero_copy("z", a, b),
            _ => SimTask { label: "k".into(), phases: vec![Phase::Kernel(a)] },
        }
    })
}

fn assert_no_overlap(spans: &[PhaseSpan], resource: Resource, what: &str) {
    let mut rs: Vec<&PhaseSpan> = spans.iter().filter(|s| s.resource == resource).collect();
    rs.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
    for w in rs.windows(2) {
        assert!(
            w[1].start >= w[0].end - EPS,
            "{what}: overlapping {resource:?} spans {:?} and {:?}",
            w[0],
            w[1]
        );
    }
}

fn assert_timeline_invariants(tl: &Timeline, what: &str) {
    assert!(tl.makespan >= tl.pcie_busy - EPS, "{what}: makespan < bus busy");
    assert!(tl.makespan >= tl.gpu_busy - EPS, "{what}: makespan < gpu busy");
    assert!(tl.makespan >= tl.cpu_busy - EPS, "{what}: makespan < cpu busy");
    for r in [Resource::Cpu, Resource::Pcie, Resource::Gpu] {
        assert_no_overlap(&tl.phase_spans, r, what);
    }
    // Fused phases: the bus span and the GPU span cover the same interval.
    for s in tl.phase_spans.iter().filter(|s| s.fused && s.resource == Resource::Pcie) {
        let twin = tl
            .phase_spans
            .iter()
            .find(|t| {
                t.fused && t.resource == Resource::Gpu && t.task == s.task && t.start == s.start
            })
            .unwrap_or_else(|| panic!("{what}: fused bus span {s:?} has no GPU twin"));
        assert_eq!(twin.end, s.end, "{what}: fused spans diverge");
    }
    for (_, start, end) in &tl.spans {
        assert!(end >= start, "{what}: negative task span");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn stream_sim_invariants_hold(
        tasks in proptest::collection::vec(arb_task(), 0..24),
        streams in 1usize..6,
    ) {
        let tl = StreamSim::new(streams).schedule(&tasks);
        assert_timeline_invariants(&tl, "StreamSim");
        prop_assert_eq!(tl.spans.len(), tasks.len());
    }

    #[test]
    fn multi_gpu_invariants_hold(
        lists in proptest::collection::vec(proptest::collection::vec(arb_task(), 0..10), 1..5),
        streams in 1usize..4,
    ) {
        let nd = lists.len();
        let tl = MultiGpuSim::new(nd, streams).schedule(&lists);
        // Per-device timelines obey the single-device invariants.
        for (d, dev) in tl.per_device.iter().enumerate() {
            assert_timeline_invariants(dev, &format!("device {d}"));
            prop_assert!(tl.makespan >= dev.makespan - EPS);
        }
        // The shared bus serialises across devices, not just within one.
        let mut bus = tl.bus_spans.clone();
        bus.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for w in bus.windows(2) {
            prop_assert!(w[1].1 >= w[0].2 - EPS, "cross-device bus overlap: {:?} / {:?}", w[0], w[1]);
        }
        // Shared totals are the per-device sums.
        let bus_sum: f64 = tl.per_device.iter().map(|t| t.pcie_busy).sum();
        prop_assert!((tl.bus_busy - bus_sum).abs() < EPS);
        prop_assert!(tl.makespan >= tl.bus_busy - EPS);
        prop_assert!(tl.makespan >= tl.cpu_busy - EPS);
    }

    #[test]
    fn single_device_multi_sim_equals_stream_sim(
        tasks in proptest::collection::vec(arb_task(), 0..16),
        streams in 1usize..5,
    ) {
        let single = StreamSim::new(streams).schedule(&tasks);
        let multi = MultiGpuSim::new(1, streams).schedule(std::slice::from_ref(&tasks));
        prop_assert_eq!(multi.makespan, single.makespan);
        prop_assert_eq!(multi.per_device[0].phase_spans.clone(), single.phase_spans);
        prop_assert_eq!(multi.bus_busy, single.pcie_busy);
        prop_assert_eq!(multi.cpu_busy, single.cpu_busy);
        prop_assert_eq!(multi.gpu_busy_total(), single.gpu_busy);
        // D=1 with any topology still equals StreamSim: a single device
        // has no peer to link to, so every shape degenerates to the one
        // host root complex for task traffic.
        for kind in TopologyKind::ALL {
            let ic = Interconnect::build(kind, 1, PcieModel::pcie3(), LinkSpec::nvlink());
            let tl = MultiGpuSim::with_interconnect(1, streams, ic).schedule(std::slice::from_ref(&tasks));
            prop_assert_eq!(tl.makespan, single.makespan);
            prop_assert_eq!(tl.link_busy[0], single.pcie_busy);
            prop_assert_eq!(tl.per_device[0].phase_spans.clone(), single.phase_spans.clone());
        }
    }

    #[test]
    fn per_link_busy_never_exceeds_makespan(
        lists in proptest::collection::vec(proptest::collection::vec(arb_task(), 0..8), 2..5),
        streams in 1usize..4,
        kind_idx in 0usize..3,
    ) {
        let nd = lists.len();
        let kind = TopologyKind::ALL[kind_idx];
        let ic = Interconnect::build(kind, nd, PcieModel::pcie3(), LinkSpec::nvlink());
        let num_queues = ic.num_queues();
        let tl = MultiGpuSim::with_interconnect(nd, streams, ic).schedule(&lists);
        // One busy slot per contention queue (full-duplex peer links
        // expose one per direction).
        prop_assert_eq!(tl.link_busy.len(), num_queues);
        for (q, &busy) in tl.link_busy.iter().enumerate() {
            prop_assert!(busy <= tl.makespan + EPS, "queue {q} busy {busy} > makespan {}", tl.makespan);
            prop_assert!(busy >= 0.0);
        }
        // Task traffic is host-routed: the host queue's busy time is the
        // bus total and the peer queues stay idle.
        prop_assert!((tl.link_busy[0] - tl.bus_busy).abs() < EPS);
        prop_assert!(tl.link_busy[1..].iter().all(|&b| b == 0.0));
    }

    #[test]
    fn exchange_report_invariants_hold(
        owned in proptest::collection::vec(0u64..2_000_000, 2..7),
        kind_idx in 0usize..3,
    ) {
        let nd = owned.len();
        let kind = TopologyKind::ALL[kind_idx];
        let pcie = PcieModel::pcie3();
        let peer = LinkSpec::nvlink();
        let participates = vec![true; nd];
        let ic = Interconnect::build(kind, nd, pcie, peer);
        let r = ic.price_all_gather(&owned, &participates);
        // Per-queue busy never exceeds the makespan, which is exactly
        // the busiest direction queue (legs on disjoint queues overlap
        // fully) floored by the longest forwarded hop chain (a batch's
        // hops depend on each other even across idle queues).
        let busiest = r.per_queue_busy.iter().fold(r.critical_path, |a, &b| a.max(b));
        prop_assert!((r.makespan - busiest).abs() < EPS);
        prop_assert!(r.makespan >= r.critical_path - EPS, "makespan under the chain floor");
        for &b in &r.per_queue_busy {
            prop_assert!(b <= r.makespan + EPS);
        }
        // The load-aware pass may re-route or split batches, but its
        // makespan still respects the (per-fragment) chain floor and
        // never exceeds the static pass.
        let la = ic.price_all_gather_load_aware(&owned, &participates);
        prop_assert!(la.makespan >= la.critical_path - EPS, "load-aware under its chain floor");
        prop_assert!(la.makespan <= r.makespan + EPS);
        // A link's wire occupancy is the sum of its queues, and class
        // totals tile the per-link vector.
        let link_sum: f64 = r.per_link_busy.iter().sum();
        let queue_sum: f64 = r.per_queue_busy.iter().sum();
        prop_assert!((link_sum - queue_sum).abs() < EPS);
        prop_assert!((link_sum - r.host_time - r.peer_time).abs() < EPS);
        // The logical payload is routing-invariant…
        let host = Interconnect::build(TopologyKind::HostOnly, nd, pcie, peer)
            .price_all_gather(&owned, &participates);
        prop_assert_eq!(r.payload_bytes, host.payload_bytes);
        // …and peer links (at least as fast as the host link here) never
        // make the exchange slower than full host staging.
        prop_assert!(r.makespan <= host.makespan + EPS);
        // Host-only is the legacy serial bus: makespan == host busy, and
        // nothing rides or relays over peers.
        prop_assert_eq!(host.makespan, host.host_time);
        prop_assert_eq!(host.peer_bytes, 0);
        prop_assert_eq!(host.forwarded_bytes, 0);
    }
}

#[test]
fn fused_phase_holds_bus_and_gpu_for_identical_interval() {
    // Deterministic version of the fused invariant with asymmetric times:
    // wall interval is max(transfer, kernel) on both resources.
    let tl = StreamSim::new(2).schedule(&[SimTask::zero_copy("z", 5.0, 2.0)]);
    let pcie: Vec<_> = tl.phase_spans.iter().filter(|s| s.resource == Resource::Pcie).collect();
    let gpu: Vec<_> = tl.phase_spans.iter().filter(|s| s.resource == Resource::Gpu).collect();
    assert_eq!(pcie.len(), 1);
    assert_eq!(gpu.len(), 1);
    assert_eq!((pcie[0].start, pcie[0].end), (gpu[0].start, gpu[0].end));
    assert_eq!(pcie[0].end, 5.0);
    assert!(pcie[0].fused && gpu[0].fused);
    // Busy accounting still records the true demand, not the wall interval.
    assert_eq!(tl.pcie_busy, 5.0);
    assert_eq!(tl.gpu_busy, 2.0);
}
