//! Regression suite for width-aware pricing (ISSUE 6 satellite): every
//! layer derives its per-vertex payload from the program's declared
//! value width instead of hard-coded 8-byte constants.

use hytgraph::core::api::{EdgeCtx, InitialFrontier, ValueLayout, VertexProgram};
use hytgraph::core::{HyTGraphConfig, HyTGraphSystem, SystemKind};
use hytgraph::graph::{generators, DeviceAssignment, VertexId};

/// Min-fold over `u32` values — 4 bytes on the wire (8-byte records).
struct Min32;
impl VertexProgram for Min32 {
    type Value = u32;
    fn init(&self, v: VertexId) -> u32 {
        v
    }
    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::All
    }
    fn message(&self, seed: u32, _: EdgeCtx) -> Option<u32> {
        Some(seed)
    }
    fn accumulate(&self, s: u32, m: u32) -> Option<u32> {
        (m < s).then_some(m)
    }
}

/// The identical fold over `u64` values — 8 bytes on the wire (12-byte
/// records). Same activations, same iterations; only the width differs.
struct Min64;
impl VertexProgram for Min64 {
    type Value = u64;
    fn init(&self, v: VertexId) -> u64 {
        v as u64
    }
    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::All
    }
    fn message(&self, seed: u64, _: EdgeCtx) -> Option<u64> {
        Some(seed)
    }
    fn accumulate(&self, s: u64, m: u64) -> Option<u64> {
        (m < s).then_some(m)
    }
}

fn sharded_cfg(d: usize) -> HyTGraphConfig {
    let mut cfg = SystemKind::HyTGraph.configure(HyTGraphConfig::default());
    cfg.num_devices = d;
    cfg.device_assignment = DeviceAssignment::EdgeBalanced;
    cfg.threads = 1;
    cfg
}

#[test]
fn four_byte_values_price_smaller_exchanges_than_eight_byte() {
    let g = generators::rmat(10, 8.0, 17, false);
    let mut sys = HyTGraphSystem::new(g.clone(), sharded_cfg(2));
    let narrow = sys.run(Min32);
    let mut sys = HyTGraphSystem::new(g, sharded_cfg(2));
    let wide = sys.run(Min64);

    // Identical propagation: same fixpoint, same iteration count, so the
    // two runs exchanged exactly the same *record* stream.
    assert_eq!(wide.values, narrow.values.iter().map(|&v| v as u64).collect::<Vec<_>>());
    assert_eq!(wide.iterations, narrow.iterations);

    let x32 = narrow.counters.exchange_bytes;
    let x64 = wide.counters.exchange_bytes;
    assert!(x32 > 0, "the sharded run must exchange frontiers");
    assert!(x32 < x64, "4-byte records must price a smaller exchange ({x32} vs {x64})");
    // Exactly the record-size ratio: 8 bytes/record vs 12 bytes/record.
    assert_eq!(x32 * 12, x64 * 8, "exchange must scale with declared record size");
}

#[test]
fn run_results_carry_the_layout_they_were_priced_with() {
    let g = generators::rmat(8, 4.0, 3, false);
    let mut sys = HyTGraphSystem::new(g.clone(), sharded_cfg(1));
    let r32 = sys.run(Min32);
    assert_eq!(r32.value_layout, ValueLayout { lanes: 1, wire_bytes: 4 });
    assert_eq!(r32.value_layout.record_bytes(), 8);
    assert_eq!(r32.value_layout.state_bytes(), 24);
    let mut sys = HyTGraphSystem::new(g, sharded_cfg(1));
    let r64 = sys.run(Min64);
    assert_eq!(r64.value_layout, ValueLayout::narrow());
    assert_eq!(r64.value_layout.record_bytes(), 12);
}

#[test]
fn width_is_priced_but_never_changes_narrow_results() {
    // The narrow layouts (every pre-existing program) must go through
    // the width-aware plumbing as exact identities: same values, same
    // iterations, same simulated time as each other for u32 vs u64 on
    // a *single* device (no exchange, no surplus, same state bytes).
    let g = generators::rmat(9, 6.0, 29, false);
    let mut sys = HyTGraphSystem::new(g.clone(), sharded_cfg(1));
    let r32 = sys.run(Min32);
    let mut sys = HyTGraphSystem::new(g, sharded_cfg(1));
    let r64 = sys.run(Min64);
    assert_eq!(r64.values, r32.values.iter().map(|&v| v as u64).collect::<Vec<_>>());
    assert_eq!(r64.iterations, r32.iterations);
    assert_eq!(r64.total_time, r32.total_time, "identical narrow pricing");
    assert_eq!(r64.counters, r32.counters);
}
