//! Offline drop-in for the slice of the `bytes` crate this workspace uses:
//! the [`Buf`] reading cursor on `&[u8]` and the [`BufMut`] little-endian
//! appenders on `Vec<u8>`.

/// Sequential little-endian reader. Implemented for `&[u8]`, where each read
/// advances the slice itself (as in the real crate).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy exactly `dst.len()` bytes out and advance. Panics if short.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Growable little-endian writer. Implemented for `Vec<u8>`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut buf = Vec::new();
        buf.put_slice(b"HCSR");
        buf.put_u32_le(1);
        buf.put_u8(7);
        buf.put_u64_le(0xDEADBEEF00C0FFEE);
        let mut r: &[u8] = &buf;
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HCSR");
        assert_eq!(r.get_u32_le(), 1);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), 0xDEADBEEF00C0FFEE);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
