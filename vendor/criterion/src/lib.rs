//! Offline drop-in for the slice of `criterion` this workspace's benches
//! use: `Criterion`, `benchmark_group`, `bench_function`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple — mean over `sample_size` timed
//! iterations after one warm-up — because the benches exist to observe
//! relative movement between revisions, not to be a rigorous harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units a group's throughput is reported in.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Items processed per bench iteration.
    Elements(u64),
    /// Bytes processed per bench iteration.
    Bytes(u64),
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _c: self,
        }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&name.into(), sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotate per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// End the group (report-flush hook in real criterion; a no-op here).
    pub fn finish(&mut self) {}
}

/// Passed to the bench closure; call [`Bencher::iter`] with the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the sample's iterations, timing the total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    // Warm-up, then one timed pass per sample.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let mean = total / samples as u32;
    let rate = tp.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>10.1} elem/s", n as f64 / mean.as_secs_f64()),
        Throughput::Bytes(n) => {
            format!("  {:>10.2} MiB/s", n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0))
        }
    });
    println!("bench {name:<40} mean {:>12?}  min {:>12?}{}", mean, best, rate.unwrap_or_default());
}

/// Build a group-runner function from a config expression and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),*);
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}
