//! Offline drop-in for `crossbeam::scope`, backed by `std::thread::scope`
//! (stable since Rust 1.63, which removed the original need for crossbeam's
//! scoped threads).
//!
//! API shape matched: the scope closure receives `&Scope`, spawned closures
//! receive `&Scope` again (so they can spawn nested work), `spawn` returns a
//! joinable handle, and `scope` returns `Result` like crossbeam does.

use std::any::Any;

/// Error type carried by a failed scope (a payload from a panicked,
/// un-joined child thread). With the std backing, child panics propagate by
/// panicking the scope itself, so `scope` in practice always returns `Ok`.
pub type ScopeError = Box<dyn Any + Send + 'static>;

/// A scope handle; lets workers spawn further scoped threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread and return its result (`Err` if it panicked).
    pub fn join(self) -> Result<T, ScopeError> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. The closure receives the scope again, mirroring
    /// crossbeam's signature (call sites typically write `|_| ...`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle { inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })) }
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned; all
/// spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrows_and_joins() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
