//! Offline drop-in for the slice of `proptest` this workspace's tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`any`], `ProptestConfig::with_cases`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberate for an offline test shim:
//!
//! * no shrinking — a failing case reports its number and message only;
//! * the RNG seed is a stable function of the test's module path and name,
//!   so failures reproduce exactly across runs and platforms (upstream's
//!   persistence file is unnecessary).

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng, StdRng};

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert!` family macros inside a test body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test RNG: FNV-1a over the test's full name.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Whole-domain generation (the `any::<T>()` entry point).
pub trait Arbitrary: Sized {
    /// Draw one value from the full domain of `Self`.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.gen()
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` of `len`-many `element` draws.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module conventionally glob-imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a `proptest!` body; failure aborts only the current case's
/// closure via `return Err(..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}:\n{}",
                            stringify!($name),
                            case,
                            cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_and_tuple_strategies(v in collection::vec((0u32..5, any::<bool>()), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (n, _) in v {
                prop_assert!(n < 5);
            }
        }

        #[test]
        fn flat_map_threads_values(pair in (2u32..8).prop_flat_map(|n| (0..n).prop_map(move |k| (n, k)))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k {k} n {n}");
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::Rng;
        let a: Vec<u64> = {
            let mut r = crate::rng_for("x::y");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::rng_for("x::y");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
