//! Offline drop-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}`.
//!
//! The build environment has no crates.io access, so this shim provides a
//! self-contained xoshiro256** generator behind the same names. The stream
//! differs from upstream `StdRng` (which upstream does not guarantee stable
//! across versions anyway); what matters for the workspace is that identical
//! seeds produce identical sequences on every platform, which pure integer
//! arithmetic guarantees.

use std::ops::{Range, RangeInclusive};

/// The workspace's seeded generator: xoshiro256** seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

/// `rand::rngs` module mirror so `use rand::rngs::StdRng` keeps working.
pub mod rngs {
    pub use crate::StdRng;
}

/// Seeding constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            s = [1, 2, 3, 4];
        }
        StdRng { s }
    }
}

impl StdRng {
    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly (subset of `rand`'s `SampleRange`).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    // Fixed-point multiply; bias is ≤ width / 2^64, irrelevant here.
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, width) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let width = (hi as u64).wrapping_sub(lo as u64);
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, width + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Sampling methods (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample from the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = r.gen_range(-0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformish() {
        let mut r = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "count {c}");
        }
    }
}
