//! Offline drop-in for the slice of `serde` this workspace uses: a
//! `Serialize` trait (JSON-writer based rather than serde's generic
//! `Serializer`, since JSON is the only format the workspace emits) and the
//! `#[derive(Serialize)]` macro re-export.

pub use serde_derive::Serialize;

/// JSON serialisation machinery consumed by derived impls and `serde_json`.
pub mod json {
    /// Streaming JSON writer with optional pretty-printing.
    pub struct Writer {
        out: String,
        pretty: bool,
        indent: usize,
        /// Whether a value has already been emitted at each open nesting
        /// level (controls comma placement).
        has_item: Vec<bool>,
    }

    impl Writer {
        /// New writer; `pretty` adds newlines and two-space indentation.
        pub fn new(pretty: bool) -> Writer {
            Writer { out: String::new(), pretty, indent: 0, has_item: Vec::new() }
        }

        /// Finish and return the JSON text.
        pub fn finish(self) -> String {
            self.out
        }

        fn newline_indent(&mut self) {
            if self.pretty {
                self.out.push('\n');
                for _ in 0..self.indent {
                    self.out.push_str("  ");
                }
            }
        }

        /// Comma/indent bookkeeping before a value in an array or a key in
        /// an object.
        fn pre_item(&mut self) {
            if let Some(has) = self.has_item.last_mut() {
                if *has {
                    self.out.push(',');
                }
                *has = true;
                self.newline_indent();
            }
        }

        /// Open `{`.
        pub fn begin_object(&mut self) {
            self.out.push('{');
            self.indent += 1;
            self.has_item.push(false);
        }

        /// Close `}`.
        pub fn end_object(&mut self) {
            let had = self.has_item.pop().unwrap_or(false);
            self.indent -= 1;
            if had {
                self.newline_indent();
            }
            self.out.push('}');
        }

        /// Open `[`.
        pub fn begin_array(&mut self) {
            self.out.push('[');
            self.indent += 1;
            self.has_item.push(false);
        }

        /// Close `]`.
        pub fn end_array(&mut self) {
            let had = self.has_item.pop().unwrap_or(false);
            self.indent -= 1;
            if had {
                self.newline_indent();
            }
            self.out.push(']');
        }

        /// Emit one `"key": value` pair inside an object.
        pub fn field<T: crate::Serialize + ?Sized>(&mut self, key: &str, value: &T) {
            self.pre_item();
            self.write_escaped(key);
            self.out.push(':');
            if self.pretty {
                self.out.push(' ');
            }
            value.serialize_json_element(self);
        }

        /// Emit one element inside an array.
        pub fn element<T: crate::Serialize + ?Sized>(&mut self, value: &T) {
            self.pre_item();
            value.serialize_json_element(self);
        }

        /// Emit a JSON string value.
        pub fn string(&mut self, s: &str) {
            self.write_escaped(s);
        }

        /// Emit a raw (pre-rendered) JSON token, e.g. a number literal.
        pub fn raw(&mut self, token: &str) {
            self.out.push_str(token);
        }

        fn write_escaped(&mut self, s: &str) {
            self.out.push('"');
            for c in s.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    '\r' => self.out.push_str("\\r"),
                    '\t' => self.out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        self.out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }
    }
}

/// Types that can write themselves as JSON. Derivable for named-field
/// structs and unit enums via `#[derive(Serialize)]`.
pub trait Serialize {
    /// Write `self` as a JSON value.
    fn serialize_json(&self, w: &mut json::Writer);

    /// Hook used by container impls; identical to [`Serialize::serialize_json`]
    /// unless a type needs position-sensitive output.
    #[doc(hidden)]
    fn serialize_json_element(&self, w: &mut json::Writer) {
        self.serialize_json(w);
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, w: &mut json::Writer) {
                w.raw(&self.to_string());
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_json(&self, w: &mut json::Writer) {
        w.raw(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, w: &mut json::Writer) {
        if self.is_finite() {
            w.raw(&format!("{self}"));
        } else {
            // JSON has no Inf/NaN; serde_json emits null.
            w.raw("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, w: &mut json::Writer) {
        (*self as f64).serialize_json(w);
    }
}

impl Serialize for str {
    fn serialize_json(&self, w: &mut json::Writer) {
        w.string(self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, w: &mut json::Writer) {
        w.string(self);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, w: &mut json::Writer) {
        match self {
            Some(v) => v.serialize_json(w),
            None => w.raw("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, w: &mut json::Writer) {
        w.begin_array();
        for v in self {
            w.element(v);
        }
        w.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, w: &mut json::Writer) {
        self.as_slice().serialize_json(w);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, w: &mut json::Writer) {
        (**self).serialize_json(w);
    }
}
