//! Offline shim for serde's `#[derive(Serialize)]`, written against the
//! bare `proc_macro` API (no `syn`/`quote` available offline).
//!
//! Supports what the workspace uses: non-generic structs with named fields
//! and enums with unit variants. Field/variant attributes are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the workspace's `serde::Serialize` (JSON writer) trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, got {other:?}"),
    };
    i += 1;
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive(Serialize) shim does not support generics (type {name})")
            }
            Some(_) => i += 1,
            None => panic!("derive(Serialize): no braced body on type {name}"),
        }
    };

    let generated = match kind.as_str() {
        "struct" => derive_struct(&name, &body),
        "enum" => derive_enum(&name, &body),
        other => panic!("derive(Serialize): unsupported item kind `{other}`"),
    };
    generated.parse().expect("derive(Serialize): generated code parses")
}

/// Collect the top-level comma-separated entries of a brace group, returning
/// the leading identifier of each entry after attributes and visibility
/// (i.e. field names for structs, variant names for enums). Entries whose
/// leading identifier is followed by anything other than `:`/`,`/end (for
/// structs) cause a panic, keeping silent misparses impossible.
fn leading_idents(body: &proc_macro::Group, expect_colon: bool) -> Vec<String> {
    let mut names = Vec::new();
    let mut at_entry_start = true;
    let mut depth = 0usize;
    let mut toks = body.stream().into_iter().peekable();
    while let Some(t) = toks.next() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '#' && at_entry_start => {
                // Attribute: swallow the following bracket group.
                let _ = toks.next();
            }
            TokenTree::Ident(id) if at_entry_start => {
                let s = id.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = toks.next();
                        }
                    }
                    continue;
                }
                names.push(s);
                at_entry_start = false;
                if expect_colon {
                    match toks.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                        other => panic!(
                            "derive(Serialize): expected `:` after field `{}`, got {other:?}",
                            names.last().unwrap()
                        ),
                    }
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => at_entry_start = true,
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    names
}

fn derive_struct(name: &str, body: &proc_macro::Group) -> String {
    let fields = leading_idents(body, true);
    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n    fn serialize_json(&self, w: &mut ::serde::json::Writer) {{\n        w.begin_object();\n"
    ));
    for f in &fields {
        out.push_str(&format!("        w.field({f:?}, &self.{f});\n"));
    }
    out.push_str("        w.end_object();\n    }\n}\n");
    out
}

fn derive_enum(name: &str, body: &proc_macro::Group) -> String {
    let variants = leading_idents(body, false);
    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n    fn serialize_json(&self, w: &mut ::serde::json::Writer) {{\n        match self {{\n"
    ));
    for v in &variants {
        out.push_str(&format!("            {name}::{v} => w.string({v:?}),\n"));
    }
    out.push_str("        }\n    }\n}\n");
    out
}
