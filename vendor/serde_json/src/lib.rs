//! Offline drop-in for the two `serde_json` entry points the workspace
//! uses: [`to_string`] and [`to_string_pretty`].

use serde::json::Writer;
use serde::Serialize;

/// Serialisation error. The shim's writer is infallible, so this is only a
/// signature-compatibility placeholder.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialisation error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = Writer::new(false);
    value.serialize_json(&mut w);
    Ok(w.finish())
}

/// Two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = Writer::new(true);
    value.serialize_json(&mut w);
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_vecs() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        let empty: Vec<u32> = Vec::new();
        assert_eq!(to_string(&empty).unwrap(), "[]");
    }

    #[test]
    fn pretty_nests() {
        let v = vec![vec!["x".to_string()], vec![]];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  [\n    \"x\"\n  ],\n  []\n]");
    }
}
