//! Offline drop-in for the `serde_json` entry points the workspace
//! uses: [`to_string`], [`to_string_pretty`], and a dynamically-typed
//! [`from_str`]/[`Value`] pair for reading JSON back (the perf baseline
//! regression gate).

use serde::json::Writer;
use serde::Serialize;

/// Serialisation/parse error with a human-readable message.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A parsed JSON document (objects keep insertion order; lookups are
/// linear, which is fine at baseline-file sizes).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like browsers do).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer (rejects negatives/fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document into a [`Value`] tree.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing bytes at offset {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error(format!("unexpected byte at offset {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("truncated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the shim's
                            // writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error("unknown escape".into())),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    out.push_str(chunk);
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| Error(format!("invalid number at offset {start}")))
    }
}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = Writer::new(false);
    value.serialize_json(&mut w);
    Ok(w.finish())
}

/// Two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = Writer::new(true);
    value.serialize_json(&mut w);
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_vecs() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        let empty: Vec<u32> = Vec::new();
        assert_eq!(to_string(&empty).unwrap(), "[]");
    }

    #[test]
    fn pretty_nests() {
        let v = vec![vec!["x".to_string()], vec![]];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  [\n    \"x\"\n  ],\n  []\n]");
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(from_str("\"a\\n\\\"b\\u0041\"").unwrap().as_str(), Some("a\n\"bA"));
        let arr = from_str("[1, 2, 3]").unwrap();
        assert_eq!(arr.as_array().map(<[Value]>::len), Some(3));
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn value_accessors_round_trip_the_writer() {
        #[derive(serde::Serialize)]
        struct Rec {
            name: String,
            n: u64,
            t: f64,
            ok: bool,
        }
        let json =
            to_string_pretty(&vec![Rec { name: "SK".into(), n: 8, t: 0.25, ok: true }]).unwrap();
        let v = from_str(&json).unwrap();
        let rec = &v.as_array().unwrap()[0];
        assert_eq!(rec.get("name").and_then(Value::as_str), Some("SK"));
        assert_eq!(rec.get("n").and_then(Value::as_u64), Some(8));
        assert_eq!(rec.get("t").and_then(Value::as_f64), Some(0.25));
        assert_eq!(rec.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(rec.get("missing"), None);
        assert_eq!(rec.get("t").and_then(Value::as_u64), None);
    }
}
